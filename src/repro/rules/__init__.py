"""Rules: inference, integrity, composition, and closure engines."""

from .builtin import STANDARD_RULES, STANDARD_RULES_BY_NAME
from .composition import (
    COMPOSITION_OFF,
    UNLIMITED,
    CompositionResult,
    composable,
    compose_closure,
    compose_pair,
)
from .dispatch import (
    CompiledRuleSet,
    compile_ruleset,
    dispatched_closure,
    stratify,
)
from .engine import (
    ClosureResult,
    Justification,
    extend_closure,
    naive_closure,
    semi_naive_closure,
)
from .lazy import LazyEngine, canonical_goal
from .provenance import (
    DerivationTree,
    ProvenanceError,
    explain_fact,
)
from .integrity import (
    Violation,
    contradictory_pairs,
    find_contradictions,
    is_consistent,
)
from .registry import RuleRegistry
from .rule import (
    Condition,
    Distinct,
    IndividualRelationship,
    NotSpecial,
    RelationshipClassifier,
    Rule,
    RuleContext,
)

__all__ = [
    "STANDARD_RULES", "STANDARD_RULES_BY_NAME", "COMPOSITION_OFF",
    "UNLIMITED", "CompositionResult", "composable", "compose_closure",
    "compose_pair", "ClosureResult", "Justification", "extend_closure",
    "naive_closure", "semi_naive_closure", "CompiledRuleSet",
    "compile_ruleset", "dispatched_closure", "stratify",
    "LazyEngine", "canonical_goal",
    "DerivationTree", "ProvenanceError", "explain_fact",
    "Violation", "contradictory_pairs", "find_contradictions",
    "is_consistent", "RuleRegistry", "Condition", "Distinct",
    "IndividualRelationship", "NotSpecial", "RelationshipClassifier",
    "Rule", "RuleContext",
]
