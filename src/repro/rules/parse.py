"""A surface syntax for rules (paper §2.5–2.6).

The paper writes rules as implications between template conjunctions::

    (x, ∈, AGE) => (x, >, 0)
    (x, in, EMPLOYEE) and (EMPLOYEE, EARNS, y) => (x, EARNS, y)
    (r, in, SYMMETRIC) and (a, r, b) => (b, r, a)

This module parses exactly that shape into :class:`~.rule.Rule`
objects, so integrity constraints and custom inference rules can be
written as text — the same notational convenience the query language
gets from :mod:`repro.query.parser` (whose lexical rules for entities,
variables, and aliases apply verbatim on both sides of ``=>``).

Guards can be attached with a trailing ``where`` clause::

    (s, r, t) and (t, r, u) => (s, r, u) where s != u
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..core.errors import ParseError, RuleError
from ..core.facts import Template, Variable
from ..query.ast import And, Atom, Formula
from ..query.parser import parse_formula
from .rule import Condition, Distinct, Rule

_ARROW = "=>"
_WHERE_RE = re.compile(r"\bwhere\b", re.IGNORECASE)
_GUARD_RE = re.compile(
    r"^\s*([A-Za-z_][\w]*|\S+?)\s*!=\s*([A-Za-z_][\w]*|\S+?)\s*$")


def _templates_of(text: str, side: str) -> Tuple[Template, ...]:
    formula: Formula = parse_formula(text)
    if isinstance(formula, Atom):
        return (formula.pattern,)
    if isinstance(formula, And) and all(
            isinstance(part, Atom) for part in formula.parts):
        return tuple(part.pattern for part in formula.parts)
    raise RuleError(
        f"rule {side} must be a conjunction of templates (the paper's"
        f" strictly conjunctive rules, §2.6); got: {formula}")


def _parse_guard(text: str) -> Condition:
    match = _GUARD_RE.match(text)
    if match is None:
        raise RuleError(
            f"unsupported guard {text.strip()!r}; guards have the form"
            " 'a != b' (comma-separated)")
    components = []
    for token in match.groups():
        if re.fullmatch(r"[a-z][a-zA-Z0-9_]*", token):
            components.append(Variable(token))
        else:
            components.append(token)
    return Distinct(components[0], components[1])


def parse_rule(text: str, name: str,
               is_constraint: bool = False) -> Rule:
    """Parse ``body => head [where guards]`` into a rule.

    Args:
        text: the rule text; both sides use the query language's
            template syntax (aliases like ``in`` for ``∈`` included).
        name: the rule's registry name (for ``include``/``exclude``).
        is_constraint: mark the rule as an integrity constraint (§2.5).

    Raises:
        RuleError / ParseError: on malformed rules (missing arrow,
        disjunctive sides, unsafe head variables, bad guards).
    """
    if text.count(_ARROW) != 1:
        raise RuleError(
            f"a rule needs exactly one {_ARROW!r} between body and head")
    body_text, head_text = text.split(_ARROW)

    guards: List[Condition] = []
    where_match = _WHERE_RE.search(head_text)
    if where_match is not None:
        guard_text = head_text[where_match.end():]
        head_text = head_text[:where_match.start()]
        for part in guard_text.split(","):
            if part.strip():
                guards.append(_parse_guard(part))

    return Rule(
        name=name,
        body=_templates_of(body_text, "body"),
        head=_templates_of(head_text, "head"),
        conditions=tuple(guards),
        description=f"user rule: {text.strip()}",
        is_constraint=is_constraint,
    )
