"""Forward-chaining closure computation (paper §2.6).

"Given a set of facts P and a set of rules R, the set of facts that may
be obtained by repeated application of the rules in R to the facts in P
is called the closure of P under R."

Two engines are provided:

* :func:`naive_closure` — re-derives everything each round until a
  fixpoint; the textbook baseline (benchmark F2).
* :func:`semi_naive_closure` — the production engine: each round only
  joins rule bodies through the *delta* (facts new in the previous
  round), so quiescent parts of the database are never revisited.

Both return a :class:`ClosureResult` carrying the closed store and
evaluation statistics.

Example::

    from repro import Database

    for engine in ("dispatched", "semi-naive", "naive"):
        db = Database(engine=engine)
        db.add("JOHN", "∈", "EMPLOYEE")
        db.add("EMPLOYEE", "EARNS", "SALARY")
        assert db.ask("(JOHN, EARNS, SALARY)")  # same derived closure
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..core import deadline as _deadline
from ..core.facts import Binding, Fact, Template, Variable
from ..core.store import FactStore, seed_store
from ..obs import tracer as _obs
from .rule import Condition, Rule, RuleContext

#: Reserved :attr:`ClosureResult.rule_times` key for the round-end
#: store-update ("apply") phase — time spent inserting fresh facts,
#: attributable to no single rule.
APPLY = "(apply)"


@dataclass(frozen=True)
class Justification:
    """Why one derived fact is in the closure: the rule that produced
    it and the (already-present) premise facts the rule's body matched.
    Base facts carry no justification."""

    rule: str
    premises: Tuple[Fact, ...]


@dataclass
class ClosureResult:
    """The outcome of a closure computation."""

    store: FactStore
    base_count: int
    derived_count: int
    iterations: int
    rule_firings: Dict[str, int] = field(default_factory=dict)
    #: rule name -> cumulative seconds spent joining that rule's body
    #: (populated only while obs tracing is enabled; see
    #: :mod:`repro.obs`).  The reserved ``"(apply)"`` entry holds the
    #: round-end store-update time, so the entries together partition
    #: the fixpoint loop's total time (the ``engine.closure_seconds``
    #: gauge).
    rule_times: Dict[str, float] = field(default_factory=dict)
    #: fact -> the first justification found (present when the engine
    #: ran with ``trace=True``).
    provenance: Optional[Dict[Fact, Justification]] = None

    @property
    def total(self) -> int:
        return len(self.store)


def _checkable(conditions: Sequence[Condition],
               bound: Set[Variable]) -> List[int]:
    """Indices of the conditions whose variables are all bound.

    Indices — not the conditions themselves — so that a rule repeating
    one condition object (or two conditions comparing equal) keeps every
    copy: pruning "remaining minus ready" by equality would drop all
    copies of a duplicated condition the moment one became checkable.
    """
    return [i for i, c in enumerate(conditions) if c.variables() <= bound]


def _rule_solutions(rule: Rule, atom_sources: Sequence[FactStore],
                    context: RuleContext) -> Iterator[Binding]:
    """Join the rule body left to right, atom ``i`` matched against
    ``atom_sources[i]``; prune with conditions as soon as their
    variables are bound."""
    pending = list(rule.conditions)

    def extend(index: int, binding: Binding,
               remaining: List[Condition]) -> Iterator[Binding]:
        if index == len(rule.body):
            if all(c.holds(binding, context) for c in remaining):
                yield binding
            return
        atom = rule.body[index]
        for extended in atom_sources[index].solutions(atom, binding):
            bound = set(extended)
            ready = _checkable(remaining, bound)
            if all(remaining[i].holds(extended, context) for i in ready):
                ready_set = set(ready)
                still_pending = [c for i, c in enumerate(remaining)
                                 if i not in ready_set]
                yield from extend(index + 1, extended, still_pending)

    yield from extend(0, {}, pending)


def _fire(rule: Rule, atom_sources: Sequence[FactStore],
          context: RuleContext) -> Iterator[Tuple[Fact, Binding]]:
    """All (head fact, binding) pairs derivable from one body-join
    configuration."""
    for binding in _rule_solutions(rule, atom_sources, context):
        for head_atom in rule.head:
            yield head_atom.substitute(binding).to_fact(), binding


def _premises(rule: Rule, binding: Binding) -> Tuple[Fact, ...]:
    """The body instantiation that licensed a firing."""
    return tuple(atom.substitute(binding).to_fact() for atom in rule.body)


def naive_closure(base: Iterable[Fact], rules: Sequence[Rule],
                  context: RuleContext,
                  max_iterations: Optional[int] = None,
                  trace: bool = False) -> ClosureResult:
    """Fixpoint by full re-evaluation each round (baseline engine)."""
    observing = _obs.ENABLED
    closure_span = (_obs.TRACER.span("closure.naive", rules=len(rules))
                    if observing else _obs.NULL_SPAN)
    with closure_span as span:
        store = seed_store(base)
        base_count = len(store)
        firings: Dict[str, int] = {rule.name: 0 for rule in rules}
        rule_times: Dict[str, float] = {}
        provenance: Optional[Dict[Fact, Justification]] = {} if trace else None
        iterations = 0
        changed = True
        loop_started = time.perf_counter()
        while changed:
            if max_iterations is not None and iterations >= max_iterations:
                break
            changed = False
            iterations += 1
            round_span = (_obs.TRACER.span("closure.round",
                                           engine="naive", round=iterations)
                          if observing else _obs.NULL_SPAN)
            with round_span as rspan:
                fresh: List[Fact] = []
                for rule in rules:
                    if _deadline.ACTIVE:
                        _deadline.check()
                    sources = [store] * len(rule.body)
                    if observing:
                        rule_started = time.perf_counter()
                    for fact, binding in _fire(rule, sources, context):
                        if fact not in store:
                            fresh.append(fact)
                            firings[rule.name] += 1
                            if provenance is not None \
                                    and fact not in provenance:
                                provenance[fact] = Justification(
                                    rule.name, _premises(rule, binding))
                    if observing:
                        rule_times[rule.name] = (
                            rule_times.get(rule.name, 0.0)
                            + time.perf_counter() - rule_started)
                if observing:
                    apply_started = time.perf_counter()
                for fact in fresh:
                    if store.add(fact):
                        changed = True
                if observing:
                    rule_times[APPLY] = (rule_times.get(APPLY, 0.0)
                                         + time.perf_counter() - apply_started)
                rspan.set(fresh=len(fresh))
        if observing:
            _obs.TRACER.count("engine.rounds", iterations)
            _obs.TRACER.gauge("engine.closure_seconds",
                              time.perf_counter() - loop_started)
            span.set(iterations=iterations,
                     derived=len(store) - base_count)
        return ClosureResult(store=store, base_count=base_count,
                             derived_count=len(store) - base_count,
                             iterations=iterations, rule_firings=firings,
                             rule_times=rule_times, provenance=provenance)


def semi_naive_closure(base: Iterable[Fact], rules: Sequence[Rule],
                       context: RuleContext,
                       max_iterations: Optional[int] = None,
                       trace: bool = False) -> ClosureResult:
    """Fixpoint by delta-driven evaluation (production engine).

    Each round, every rule body is evaluated once per atom position,
    with that *pivot* atom restricted to the facts derived in the
    previous round and the remaining atoms matched against the full
    store.  A derivation involving at least one new fact is therefore
    found exactly through its new atom(s); derivations involving only
    old facts were found in earlier rounds.
    """
    observing = _obs.ENABLED
    closure_span = (_obs.TRACER.span("closure.semi_naive", rules=len(rules))
                    if observing else _obs.NULL_SPAN)
    with closure_span as span:
        store = seed_store(base)
        base_count = len(store)
        firings: Dict[str, int] = {rule.name: 0 for rule in rules}
        rule_times: Dict[str, float] = {}
        provenance: Optional[Dict[Fact, Justification]] = {} if trace else None
        loop_started = time.perf_counter()
        iterations = _semi_naive_rounds(store, store.copy(), rules,
                                        context, firings, max_iterations,
                                        provenance, rule_times)
        if observing:
            _obs.TRACER.gauge("engine.closure_seconds",
                              time.perf_counter() - loop_started)
            span.set(iterations=iterations,
                     derived=len(store) - base_count)
        return ClosureResult(store=store, base_count=base_count,
                             derived_count=len(store) - base_count,
                             iterations=iterations, rule_firings=firings,
                             rule_times=rule_times, provenance=provenance)


def _pivoted_rules(rules: Sequence[Rule]) -> List[Tuple[Rule, Rule]]:
    """Per rule and pivot position, the body reordered so the pivot
    atom joins first: the delta is the small side, so the join starts
    from it instead of scanning the full store."""
    pivoted: List[Tuple[Rule, Rule]] = []
    for rule in rules:
        for pivot in range(len(rule.body)):
            body = (rule.body[pivot],) + (
                rule.body[:pivot] + rule.body[pivot + 1:])
            reordered = Rule(
                name=rule.name, body=body, head=rule.head,
                conditions=rule.conditions,
                description=rule.description,
                is_constraint=rule.is_constraint)
            pivoted.append((rule, reordered))
    return pivoted


def _semi_naive_rounds(store: FactStore, delta: FactStore,
                       rules: Sequence[Rule], context: RuleContext,
                       firings: Dict[str, int],
                       max_iterations: Optional[int] = None,
                       provenance: Optional[Dict[Fact, Justification]]
                       = None,
                       rule_times: Optional[Dict[str, float]]
                       = None) -> int:
    """Run delta rounds until quiescence, mutating ``store`` in place.

    ``delta`` holds the facts not yet joined against the rest of the
    store (they must already be *in* the store).  Returns the number of
    rounds executed.  With obs tracing enabled, cumulative per-rule join
    seconds accumulate into ``rule_times`` and each round emits a
    ``closure.round`` span carrying its delta-in/fresh-out sizes.
    """
    pivoted = _pivoted_rules(rules)
    iterations = 0
    observing = _obs.ENABLED and rule_times is not None
    while delta:
        if max_iterations is not None and iterations >= max_iterations:
            break
        iterations += 1
        round_span = (_obs.TRACER.span("closure.round",
                                       engine="semi-naive",
                                       round=iterations,
                                       delta_in=len(delta))
                      if observing else _obs.NULL_SPAN)
        with round_span as rspan:
            fresh: Set[Fact] = set()
            for rule, reordered in pivoted:
                # Deadline checkpoint (see repro.core.deadline): a
                # cancelled full closure is simply not cached; only
                # incremental extension mutates shared state, and the
                # serving layer never runs that under a deadline.
                if _deadline.ACTIVE:
                    _deadline.check()
                arity = len(reordered.body)
                sources: List[FactStore] = [delta] + [store] * (arity - 1)
                if observing:
                    rule_started = time.perf_counter()
                for fact, binding in _fire(reordered, sources, context):
                    if fact not in store and fact not in fresh:
                        fresh.add(fact)
                        firings[rule.name] += 1
                        if provenance is not None and fact not in provenance:
                            # Premises in the original body order, not the
                            # pivot order.
                            provenance[fact] = Justification(
                                rule.name, _premises(rule, binding))
                if observing:
                    rule_times[rule.name] = (
                        rule_times.get(rule.name, 0.0)
                        + time.perf_counter() - rule_started)
            if observing:
                apply_started = time.perf_counter()
            delta = FactStore()
            for fact in fresh:
                if store.add(fact):
                    delta.add(fact)
            if observing:
                rule_times[APPLY] = (rule_times.get(APPLY, 0.0)
                                     + time.perf_counter() - apply_started)
            rspan.set(fresh_out=len(delta))
    if observing:
        _obs.TRACER.count("engine.rounds", iterations)
    return iterations


def extend_closure(result: ClosureResult, new_facts: Iterable[Fact],
                   rules: Sequence[Rule], context: RuleContext,
                   compiled=None) -> ClosureResult:
    """Incrementally maintain a closure under fact *insertion*.

    Semi-naive evaluation restarts exactly where it stopped: the new
    facts become the delta, and rounds run until quiescence.  The
    result's store is extended **in place** (so live views over it stay
    valid); statistics are updated to cover the extension.

    When ``compiled`` (a :class:`~repro.rules.dispatch.CompiledRuleSet`
    for the same rules) is given, the rounds run through the dispatched
    fast path — all strata behind one dispatch index, which is sound
    for any delta and ideal here, where deltas are tiny and most rules
    stay quiescent.

    Only insertions can be maintained this way — a deletion may
    invalidate derivations and requires recomputation (the caller
    discards the cache in that case).
    """
    delta = FactStore()
    for fact in new_facts:
        if result.store.add(fact):
            delta.add(fact)
    result.base_count += len(delta)
    if delta:
        extend_span = (_obs.TRACER.span("closure.extend",
                                        new_facts=len(delta))
                       if _obs.ENABLED else _obs.NULL_SPAN)
        with extend_span:
            if compiled is not None:
                from .dispatch import run_rounds
                result.iterations += run_rounds(
                    result.store, delta, compiled.all_rules, context,
                    result.rule_firings, provenance=result.provenance,
                    rule_times=result.rule_times)
            else:
                result.iterations += _semi_naive_rounds(
                    result.store, delta, rules, context,
                    result.rule_firings, provenance=result.provenance,
                    rule_times=result.rule_times)
        result.derived_count = len(result.store) - result.base_count
    return result
