"""Integrity: contradiction detection over the closure (§2.5, §3.5).

"A loosely structured database is a set of facts P and a set of rules
R, such that the closure of P under R is free of contradictions."

Two facts ``(x, r, y)`` and ``(x, r', y)`` are contradictory if the
relationship pair is declared contradictory — ``(r, ⊥, r')`` — or if
one of them is a mathematical fact whose computed truth value is false
(storing ``(5, >, 8)`` contradicts the virtual ``(5, <, 8)``).

Integrity *constraints* are ordinary rules (§2.5): they derive required
facts into the closure, and a violation manifests as a contradiction
between a derived fact and the (stored or virtual) state — e.g.
``(x, ∈, AGE) ⇒ (x, >, 0)`` derives ``(-5, >, 0)``, which the checker
flags against the computed ``(-5, <, 0)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..core.entities import CONTRA, is_math_relationship
from ..core.facts import Fact, Template, Variable
from ..core.store import FactStore
from ..virtual.math_facts import compare


@dataclass(frozen=True)
class Violation:
    """One contradiction found in the closure."""

    fact: Fact
    conflicting: Optional[Fact]
    reason: str

    def __str__(self) -> str:
        if self.conflicting is None:
            return f"{self.fact}: {self.reason}"
        return f"{self.fact} vs {self.conflicting}: {self.reason}"


def contradictory_pairs(store: FactStore) -> Iterator[Tuple[str, str]]:
    """All declared contradictory relationship pairs ``(r, r')``."""
    pattern = Template(Variable("r"), CONTRA, Variable("r2"))
    for fact in store.match(pattern):
        yield fact.source, fact.target


def find_contradictions(store: FactStore) -> List[Violation]:
    """Every contradiction in a (closed) store.

    Args:
        store: the closure — base facts plus everything derived.

    Returns:
        Violations, in deterministic order.  Symmetric duplicates
        (``A vs B`` and ``B vs A``) are collapsed to one report.
    """
    violations: List[Violation] = []
    seen_pairs = set()

    # 1. Declared contradictions: (x,r,y) ∧ (x,r',y) with (r,⊥,r').
    wildcard_s, wildcard_t = Variable("x"), Variable("y")
    for left_rel, right_rel in sorted(set(contradictory_pairs(store))):
        for fact in store.match(Template(wildcard_s, left_rel, wildcard_t)):
            conflicting = Fact(fact.source, right_rel, fact.target)
            if conflicting not in store:
                continue
            key = frozenset((fact, conflicting))
            if key in seen_pairs:
                continue
            seen_pairs.add(key)
            violations.append(
                Violation(
                    fact=fact,
                    conflicting=conflicting,
                    reason=f"({left_rel}, ⊥, {right_rel}) is declared"))

    # 2. Stored mathematical facts that are computationally false.
    for fact in sorted(store):
        if not is_math_relationship(fact.relationship):
            continue
        if not compare(fact.relationship, fact.source, fact.target):
            violations.append(
                Violation(
                    fact=fact,
                    conflicting=None,
                    reason="contradicts the mathematical facts (§3.6)"))

    violations.sort(key=lambda v: (v.fact, v.conflicting or v.fact, v.reason))
    return violations


def is_consistent(store: FactStore) -> bool:
    """True if the store contains no contradiction."""
    return not find_contradictions(store)


@dataclass(frozen=True)
class Diagnosis:
    """A violation traced to the stored facts responsible.

    ``culprits`` is the union of the stored support of both
    conflicting facts: removing at least one culprit from every
    derivation is what repairs the contradiction.  When the conflicting
    facts are themselves stored, they are their own culprits.
    """

    violation: Violation
    culprits: Tuple[Fact, ...]

    def render(self) -> str:
        lines = [str(self.violation), "  stored facts responsible:"]
        lines.extend(f"    {fact}" for fact in self.culprits)
        return "\n".join(lines)


def diagnose(violations, base: FactStore, provenance) -> List[Diagnosis]:
    """Trace each violation to its stored support.

    Args:
        violations: from :func:`find_contradictions` over the closure.
        base: the stored facts.
        provenance: the engine's justification map (``trace=True``).
    """
    from .provenance import explain_fact

    diagnoses: List[Diagnosis] = []
    for violation in violations:
        culprits = set()
        for fact in (violation.fact, violation.conflicting):
            if fact is None:
                continue
            if fact in base:
                culprits.add(fact)
            else:
                culprits |= explain_fact(
                    fact, base, provenance).stored_support()
        diagnoses.append(Diagnosis(violation=violation,
                                   culprits=tuple(sorted(culprits))))
    return diagnoses
