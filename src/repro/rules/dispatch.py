"""The closure fast path: compiled joins, relationship-indexed rule
dispatch, and stratified fixpoint evaluation.

The paper leaves "suitable storage strategies [and] performance" open
(§6.2).  The semi-naive engine (:mod:`.engine`) is correct but does far
more work per round than the rule set requires: every pivoted rule body
is re-joined through every delta, via generic template matching that
allocates a binding dict per candidate.  The standard rules (§3) have
*ground* relationship positions in almost every body atom, which makes
three classic deductive-database techniques apply directly:

1. **Compiled joins** — each pivoted rule body is compiled once into a
   slot program: variables become integer slots, atoms become indexed
   lookups with precomputed fill/check positions, and conditions are
   compiled to closures attached to the earliest join level at which
   their variables are bound.  No ``Binding`` dicts, no per-candidate
   frozensets, no re-derived condition schedules.

2. **Relationship-indexed dispatch** — a dispatch index maps each
   ground pivot relationship (plus a wildcard bucket) to the compiled
   rule bodies whose pivot atom can match it.  A semi-naive round then
   fires only the rules reachable from the relationships actually
   present in the delta; quiescent rules are skipped outright (the
   ``dispatch.skipped_rules`` counter).

3. **Stratified fixpoint** — the rule head→body relationship-dependency
   graph is condensed into SCC strata; each stratum runs to quiescence
   in topological order.  Rules in later strata never join against the
   churn of earlier strata's rounds, and rules in earlier strata are
   provably quiescent once their stratum closes.  (The full standard
   rule set collapses into one stratum — the synonym substitution rules
   consume and produce every relationship — so stratification pays off
   for ablated and user-defined rule sets, exactly the configurations
   ``include``/``exclude`` (§6.1) creates.)

All three layers preserve the semantics of :func:`.engine.semi_naive_closure`
bit for bit: the same closure contents and, for single-stratum rule
sets, the same round structure, per-rule firing totals, and provenance.
"""

from __future__ import annotations

import time
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core import deadline as _deadline
from ..core.entities import is_special_relationship
from ..core.facts import Binding, Fact, Template, Variable
from ..core.store import FactStore, seed_store
from ..obs import tracer as _obs
from .rule import (
    ANY_RELATIONSHIP,
    NONSPECIAL_RELATIONSHIP,
    Condition,
    Distinct,
    IndividualRelationship,
    NotSpecial,
    RelationshipSpec,
    Rule,
    RuleContext,
    specs_overlap,
)

# ----------------------------------------------------------------------
# Stratification
# ----------------------------------------------------------------------
def rule_dependencies(rules: Sequence[Rule]) -> List[List[int]]:
    """Adjacency lists of the head→body relationship-dependency graph.

    ``edges[b]`` contains ``a`` when a fact derivable by ``rules[b]``'s
    head could match some body atom of ``rules[a]`` — i.e. rule *b*
    feeds rule *a*, so *a* must be evaluated with or after *b*.  The
    analysis is a sound overapproximation (see
    :func:`~repro.rules.rule.specs_overlap`).
    """
    produced = [rule.produced_relationship_specs() for rule in rules]
    consumed = [rule.consumed_relationship_specs() for rule in rules]
    edges: List[List[int]] = []
    for b in range(len(rules)):
        out: List[int] = []
        for a in range(len(rules)):
            if any(specs_overlap(p, c)
                   for p in produced[b] for c in consumed[a]):
                out.append(a)
        edges.append(out)
    return edges


def stratify(rules: Sequence[Rule]) -> List[List[Rule]]:
    """SCC strata of the dependency graph, in topological order.

    Producers come first; mutually recursive rules share a stratum;
    within a stratum rules keep their registration order.  Evaluating
    the strata in order, each to quiescence, reaches the same fixpoint
    as global round-robin evaluation.
    """
    rules = list(rules)
    n = len(rules)
    if n == 0:
        return []
    succ = rule_dependencies(rules)

    # Iterative Tarjan: SCCs are emitted consumers-first, so the
    # reversed emission order is the producers-first topological order.
    indices: List[Optional[int]] = [None] * n
    low = [0] * n
    on_stack = [False] * n
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = 0
    for root in range(n):
        if indices[root] is not None:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, edge_index = work[-1]
            if edge_index == 0:
                indices[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            descended = False
            for i in range(edge_index, len(succ[node])):
                neighbor = succ[node][i]
                if indices[neighbor] is None:
                    work[-1] = (node, i + 1)
                    work.append((neighbor, 0))
                    descended = True
                    break
                if on_stack[neighbor]:
                    low[node] = min(low[node], indices[neighbor])
            if descended:
                continue
            if low[node] == indices[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return [[rules[i] for i in sorted(component)]
            for component in reversed(sccs)]


# ----------------------------------------------------------------------
# Rule compilation
# ----------------------------------------------------------------------
#: Outcome markers for compile-time-decidable conditions.
_DROP = object()  # condition always holds — drop it
_DEAD = object()  # condition never holds — the rule can never fire

_AtomSpec = Tuple[Tuple[bool, Any], Tuple[bool, Any], Tuple[bool, Any]]


def _atom_spec(atom: Template, slot_of: Dict[Variable, int]) -> _AtomSpec:
    """Per position: ``(True, entity)`` or ``(False, slot)``."""
    return tuple(
        (False, slot_of[component]) if isinstance(component, Variable)
        else (True, component)
        for component in atom
    )  # type: ignore[return-value]


def _materialize(spec: _AtomSpec, slots: List[Optional[str]]) -> Fact:
    """Instantiate an atom spec under a slot assignment."""
    (c0, v0), (c1, v1), (c2, v2) = spec
    return Fact(v0 if c0 else slots[v0],
                v1 if c1 else slots[v1],
                v2 if c2 else slots[v2])


def _compile_key(parts: Sequence[Tuple[str, Any]]
                 ) -> Callable[[List[Optional[str]]],
                               Sequence[Optional[str]]]:
    """The lookup-key builder for one join level.

    ``parts`` holds per position ``('c', entity)``, ``('b', slot)``
    (bound at an earlier level), or ``('f', None)`` (free here).
    """
    consts = [value if tag == "c" else None for tag, value in parts]
    bound = tuple((i, value) for i, (tag, value) in enumerate(parts)
                  if tag == "b")
    if not bound:
        fixed = tuple(consts)
        return lambda slots: fixed

    def key(slots, _consts=tuple(consts), _bound=bound):
        out = list(_consts)
        for position, slot in _bound:
            out[position] = slots[slot]
        return out

    return key


def _compile_condition(condition: Condition,
                       slot_of: Dict[Variable, int]):
    """Compile one condition to ``fn(slots, context) -> bool``.

    Returns ``(fn, needed_slots, schedule_last)`` — or the markers
    :data:`_DROP` / :data:`_DEAD` when the outcome is decidable at
    compile time.  Unknown :class:`Condition` subclasses fall back to
    rebuilding a partial binding dict and calling ``holds`` (same
    semantics as the interpreted engine, just slower).
    """
    variables = condition.variables()
    missing = [v for v in variables if v not in slot_of]
    if not missing:
        if isinstance(condition, Distinct):
            left, right = condition.left, condition.right
            left_var = isinstance(left, Variable)
            right_var = isinstance(right, Variable)
            if left_var and right_var:
                i, j = slot_of[left], slot_of[right]
                fn = lambda slots, context, _i=i, _j=j: \
                    slots[_i] != slots[_j]
            elif left_var:
                i = slot_of[left]
                fn = lambda slots, context, _i=i, _v=right: \
                    slots[_i] != _v
            elif right_var:
                j = slot_of[right]
                fn = lambda slots, context, _j=j, _v=left: \
                    _v != slots[_j]
            else:
                return _DROP if left != right else _DEAD
            needed = frozenset(slot_of[v] for v in variables)
            return fn, needed, False
        if isinstance(condition, IndividualRelationship):
            component = condition.component
            if isinstance(component, Variable):
                i = slot_of[component]
                fn = lambda slots, context, _i=i: \
                    context.classifier.is_individual(slots[_i])
            else:
                fn = lambda slots, context, _v=component: \
                    context.classifier.is_individual(_v)
            needed = frozenset(slot_of[v] for v in variables)
            return fn, needed, False
        if isinstance(condition, NotSpecial):
            component = condition.component
            if isinstance(component, Variable):
                i = slot_of[component]
                fn = lambda slots, context, _i=i: \
                    not is_special_relationship(slots[_i])
            else:
                return (_DROP if not is_special_relationship(component)
                        else _DEAD)
            needed = frozenset(slot_of[v] for v in variables)
            return fn, needed, False
    # Fallback: unknown condition type, or a condition over variables
    # the body never binds (the interpreted engine checks those once
    # per complete solution, with the variable absent from the binding).
    pairs = tuple((v, slot_of[v]) for v in variables if v in slot_of)

    def fallback(slots, context, _condition=condition, _pairs=pairs):
        binding: Binding = {v: slots[i] for v, i in _pairs}
        return _condition.holds(binding, context)

    needed = frozenset(slot_of[v] for v in variables if v in slot_of)
    schedule_last = bool(missing) or not isinstance(
        condition, (Distinct, IndividualRelationship, NotSpecial))
    # Unknown-but-fully-bindable conditions still schedule at their
    # earliest ready level; only unbindable ones must wait for the end.
    return fallback, needed, bool(missing)


class _Level:
    """One join level of a compiled rule body."""

    __slots__ = ("key", "fills", "checks", "conditions")

    def __init__(self, key, fills, checks):
        self.key = key
        self.fills: Tuple[Tuple[int, int], ...] = fills
        self.checks: Tuple[Tuple[int, int], ...] = checks
        self.conditions: Tuple[Callable, ...] = ()


class CompiledRule:
    """One pivoted rule body compiled to a slot program.

    ``order`` reproduces the interpreted engine's evaluation order
    (rule-major, pivot-minor), so firing attribution and provenance
    stay identical for single-stratum rule sets.
    """

    __slots__ = ("rule", "pivot", "order", "n_slots", "levels", "heads",
                 "premise_specs", "pivot_spec", "dead")

    def __init__(self, rule: Rule, pivot: int, order: int):
        self.rule = rule
        self.pivot = pivot
        self.order = order
        self.dead = False

        body = (rule.body[pivot],) + (
            rule.body[:pivot] + rule.body[pivot + 1:])

        # Assign slots by first appearance in the pivoted body.
        slot_of: Dict[Variable, int] = {}
        for atom in body:
            for component in atom:
                if isinstance(component, Variable) \
                        and component not in slot_of:
                    slot_of[component] = len(slot_of)
        self.n_slots = len(slot_of)

        # Build levels, tracking which slots are bound after each.
        levels: List[_Level] = []
        bound: Set[int] = set()
        bound_after: List[Set[int]] = []
        for atom in body:
            parts: List[Tuple[str, Any]] = []
            fills: List[Tuple[int, int]] = []
            checks: List[Tuple[int, int]] = []
            filled_here: Set[int] = set()
            for position, component in enumerate(atom):
                if not isinstance(component, Variable):
                    parts.append(("c", component))
                    continue
                slot = slot_of[component]
                if slot in bound:
                    parts.append(("b", slot))
                elif slot in filled_here:
                    parts.append(("f", None))
                    checks.append((position, slot))
                else:
                    parts.append(("f", None))
                    fills.append((position, slot))
                    filled_here.add(slot)
            bound |= filled_here
            bound_after.append(set(bound))
            levels.append(_Level(_compile_key(parts), tuple(fills),
                                 tuple(checks)))

        # Attach each condition to the earliest level at which its
        # variables are bound (the interpreted engine's eager pruning).
        last = len(levels) - 1
        scheduled: Dict[int, List[Callable]] = {}
        for condition in rule.conditions:
            compiled = _compile_condition(condition, slot_of)
            if compiled is _DROP:
                continue
            if compiled is _DEAD:
                self.dead = True
                continue
            fn, needed, schedule_last = compiled
            level_index = last
            if not schedule_last:
                for i, bound_slots in enumerate(bound_after):
                    if needed <= bound_slots:
                        level_index = i
                        break
            scheduled.setdefault(level_index, []).append(fn)
        for level_index, fns in scheduled.items():
            levels[level_index].conditions = tuple(fns)
        self.levels = tuple(levels)

        self.heads: Tuple[_AtomSpec, ...] = tuple(
            _atom_spec(atom, slot_of) for atom in rule.head)
        # Premises in the original body order (for provenance).
        self.premise_specs: Tuple[_AtomSpec, ...] = tuple(
            _atom_spec(atom, slot_of) for atom in rule.body)
        self.pivot_spec: RelationshipSpec = _pivot_spec(body[0],
                                                        rule.conditions)

    def solutions(self, delta: FactStore, store: FactStore,
                  context: RuleContext) -> Iterator[List[Optional[str]]]:
        """All slot assignments satisfying the body, pivot atom matched
        against ``delta`` and the rest against ``store``.

        Yields one mutable slot list, reused across solutions: callers
        must consume (or copy) each yield before advancing.
        """
        slots: List[Optional[str]] = [None] * self.n_slots
        levels = self.levels
        last = len(levels) - 1

        def extend(i: int) -> Iterator[List[Optional[str]]]:
            level = levels[i]
            s, r, t = level.key(slots)
            source = delta if i == 0 else store
            fills = level.fills
            checks = level.checks
            conditions = level.conditions
            for fact in source.lookup(s, r, t):
                for position, slot in fills:
                    slots[slot] = fact[position]
                if checks:
                    matched = True
                    for position, slot in checks:
                        if fact[position] != slots[slot]:
                            matched = False
                            break
                    if not matched:
                        continue
                if conditions:
                    satisfied = True
                    for condition in conditions:
                        if not condition(slots, context):
                            satisfied = False
                            break
                    if not satisfied:
                        continue
                if i == last:
                    yield slots
                else:
                    yield from extend(i + 1)

        return extend(0)

    def premises(self, slots: List[Optional[str]]) -> Tuple[Fact, ...]:
        """The body instantiation (original atom order) for a solution."""
        return tuple(_materialize(spec, slots)
                     for spec in self.premise_specs)

    def __repr__(self) -> str:
        return (f"CompiledRule({self.rule.name!r}, pivot={self.pivot},"
                f" levels={len(self.levels)})")


def _pivot_spec(pivot_atom: Template,
                conditions: Sequence[Condition]) -> RelationshipSpec:
    from .rule import atom_relationship_spec
    return atom_relationship_spec(pivot_atom, conditions)


# ----------------------------------------------------------------------
# Dispatch index
# ----------------------------------------------------------------------
class DispatchGroup:
    """A set of compiled rules plus the relationship → rules index.

    ``by_relationship`` maps each ground pivot relationship to the
    compiled bodies pivoting on it; ``nonspecial`` and ``wildcard`` are
    the buckets for variable pivot relationships (with and without a
    ``NotSpecial`` guard).  :meth:`select` returns, in evaluation
    order, exactly the rules whose pivot can match some relationship in
    the delta — everything else is skipped for the round.
    """

    __slots__ = ("compiled", "by_relationship", "nonspecial", "wildcard")

    def __init__(self, compiled: Sequence[CompiledRule]):
        self.compiled: Tuple[CompiledRule, ...] = tuple(
            sorted(compiled, key=lambda cr: cr.order))
        by_relationship: Dict[str, List[CompiledRule]] = {}
        nonspecial: List[CompiledRule] = []
        wildcard: List[CompiledRule] = []
        for cr in self.compiled:
            spec = cr.pivot_spec
            if spec is ANY_RELATIONSHIP:
                wildcard.append(cr)
            elif spec is NONSPECIAL_RELATIONSHIP:
                nonspecial.append(cr)
            else:
                by_relationship.setdefault(spec, []).append(cr)
        self.by_relationship = {
            rel: tuple(rules) for rel, rules in by_relationship.items()}
        self.nonspecial = tuple(nonspecial)
        self.wildcard = tuple(wildcard)

    def select(self, delta_relationships: Iterable[str]
               ) -> List[CompiledRule]:
        """The compiled rules reachable from a delta's relationships,
        in evaluation order."""
        chosen: Dict[int, CompiledRule] = {}
        has_nonspecial = False
        for relationship in delta_relationships:
            if not is_special_relationship(relationship):
                has_nonspecial = True
            for cr in self.by_relationship.get(relationship, ()):
                chosen[cr.order] = cr
        if has_nonspecial:
            for cr in self.nonspecial:
                chosen[cr.order] = cr
        for cr in self.wildcard:
            chosen[cr.order] = cr
        return [chosen[order] for order in sorted(chosen)]

    def __len__(self) -> int:
        return len(self.compiled)


class CompiledRuleSet:
    """Everything the dispatched engine precomputes for a rule set:
    compiled pivoted bodies, the dispatch index, and the SCC strata."""

    def __init__(self, rules: Sequence[Rule]):
        self.rules: List[Rule] = list(rules)
        compiled: List[CompiledRule] = []
        order = 0
        by_name: Dict[str, List[CompiledRule]] = {}
        for rule in self.rules:
            for pivot in range(len(rule.body)):
                cr = CompiledRule(rule, pivot, order)
                order += 1
                if cr.dead:
                    continue
                compiled.append(cr)
                by_name.setdefault(rule.name, []).append(cr)
        self.compiled = compiled
        #: Every compiled body behind one dispatch index — the group
        #: incremental extension evaluates (deltas there are tiny).
        self.all_rules = DispatchGroup(compiled)
        self.strata_rules: List[List[Rule]] = stratify(self.rules)
        self.strata: List[DispatchGroup] = [
            DispatchGroup([cr for rule in stratum
                           for cr in by_name.get(rule.name, ())])
            for stratum in self.strata_rules
        ]

    def __repr__(self) -> str:
        return (f"CompiledRuleSet({len(self.rules)} rules,"
                f" {len(self.compiled)} pivoted bodies,"
                f" {len(self.strata)} strata)")


def compile_ruleset(rules: Sequence[Rule]) -> CompiledRuleSet:
    """Compile a rule sequence for the dispatched engine."""
    return CompiledRuleSet(rules)


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
def run_rounds(store: FactStore, delta: FactStore, group: DispatchGroup,
               context: RuleContext, firings: Dict[str, int],
               max_iterations: Optional[int] = None,
               provenance: Optional[Dict[Fact, Any]] = None,
               rule_times: Optional[Dict[str, float]] = None,
               stratum: Optional[int] = None,
               round_offset: int = 0) -> int:
    """Dispatched semi-naive rounds until quiescence.

    The compiled twin of :func:`.engine._semi_naive_rounds`: ``store``
    is mutated in place, ``delta`` holds the facts not yet joined
    against the rest of the store (already *in* the store), and the
    returned value is the number of rounds executed.
    """
    from .engine import APPLY, Justification

    iterations = 0
    observing = _obs.ENABLED and rule_times is not None
    total = len(group)
    while delta:
        if max_iterations is not None and iterations >= max_iterations:
            break
        iterations += 1
        if observing:
            attributes: Dict[str, Any] = {
                "engine": "dispatched",
                "round": round_offset + iterations,
                "delta_in": len(delta),
            }
            if stratum is not None:
                attributes["stratum"] = stratum
            round_span = _obs.TRACER.span("closure.round", **attributes)
        else:
            round_span = _obs.NULL_SPAN
        with round_span as rspan:
            active = group.select(delta.relationships())
            if observing:
                skipped = total - len(active)
                if skipped:
                    _obs.TRACER.count("dispatch.skipped_rules", skipped)
                _obs.TRACER.count("dispatch.fired_rules", len(active))
            fresh: Set[Fact] = set()
            for cr in active:
                # Deadline checkpoint: once per (rule, round) — a
                # cancelled closure leaves no shared state behind
                # (the store under construction is discarded).
                if _deadline.ACTIVE:
                    _deadline.check()
                rule_name = cr.rule.name
                heads = cr.heads
                if observing:
                    rule_started = time.perf_counter()
                for slots in cr.solutions(delta, store, context):
                    for spec in heads:
                        fact = _materialize(spec, slots)
                        if fact not in store and fact not in fresh:
                            fresh.add(fact)
                            firings[rule_name] += 1
                            if provenance is not None \
                                    and fact not in provenance:
                                provenance[fact] = Justification(
                                    rule_name, cr.premises(slots))
                if observing:
                    rule_times[rule_name] = (
                        rule_times.get(rule_name, 0.0)
                        + time.perf_counter() - rule_started)
            if observing:
                apply_started = time.perf_counter()
            delta = FactStore()
            for fact in fresh:
                if store.add(fact):
                    delta.add(fact)
            if observing:
                rule_times[APPLY] = (rule_times.get(APPLY, 0.0)
                                     + time.perf_counter() - apply_started)
            rspan.set(fresh_out=len(delta))
    return iterations


def dispatched_closure(base: Iterable[Fact], rules: Sequence[Rule],
                       context: RuleContext,
                       max_iterations: Optional[int] = None,
                       trace: bool = False,
                       compiled: Optional[CompiledRuleSet] = None):
    """Fixpoint by dispatched, stratified, compiled semi-naive rounds.

    Drop-in equivalent of :func:`.engine.semi_naive_closure` (identical
    closure contents; identical rounds/firings for single-stratum rule
    sets) with the three fast-path layers applied.  ``compiled`` lets
    callers reuse a :class:`CompiledRuleSet` across closures — the
    :class:`~repro.rules.registry.RuleRegistry` caches one per enabled
    rule set.
    """
    from .engine import ClosureResult

    rules = list(rules)
    if compiled is None or compiled.rules != rules:
        compiled = compile_ruleset(rules)
    observing = _obs.ENABLED
    closure_span = (_obs.TRACER.span("closure.dispatched",
                                     rules=len(rules),
                                     strata=len(compiled.strata))
                    if observing else _obs.NULL_SPAN)
    with closure_span as span:
        store = seed_store(base)
        base_count = len(store)
        firings: Dict[str, int] = {rule.name: 0 for rule in rules}
        rule_times: Dict[str, float] = {}
        provenance: Optional[Dict[Fact, Any]] = {} if trace else None
        iterations = 0
        loop_started = time.perf_counter()
        for stratum_index, group in enumerate(compiled.strata):
            remaining = (None if max_iterations is None
                         else max_iterations - iterations)
            if remaining is not None and remaining <= 0:
                break
            stratum_span = (_obs.TRACER.span("closure.stratum",
                                             stratum=stratum_index,
                                             rules=len(group))
                            if observing else _obs.NULL_SPAN)
            with stratum_span as sspan:
                # The stratum's rules have joined against nothing yet:
                # every fact accumulated so far is its initial delta.
                rounds = run_rounds(store, store.copy(), group, context,
                                    firings, remaining, provenance,
                                    rule_times, stratum=stratum_index,
                                    round_offset=iterations)
                iterations += rounds
                sspan.set(rounds=rounds, store_size=len(store))
        if observing:
            _obs.TRACER.count("engine.rounds", iterations)
            _obs.TRACER.gauge("engine.strata", len(compiled.strata))
            _obs.TRACER.gauge("engine.closure_seconds",
                              time.perf_counter() - loop_started)
            span.set(iterations=iterations,
                     derived=len(store) - base_count)
        return ClosureResult(store=store, base_count=base_count,
                             derived_count=len(store) - base_count,
                             iterations=iterations, rule_firings=firings,
                             rule_times=rule_times, provenance=provenance)
