"""Lazy, query-driven inference: tabled top-down evaluation.

The production engine materializes the closure (§2.6) before answering
anything.  This module is the other classical strategy — answer a
*template* on demand, deriving only what the question needs — which
the paper leaves open under "suitable storage strategies [and]
performance" (§6.2).  Benchmark F9 compares the two.

The algorithm is naive tabling:

* every template asked (by the user or by a rule body) becomes a
  *goal*, canonicalized up to variable renaming;
* each goal's table is seeded with the stored facts matching it;
* rules run top-down: a rule contributes to a goal when one of its
  head atoms unifies with it, and its body atoms are answered from the
  tables (registering new goals as needed);
* a global fixpoint loop re-derives every registered goal until no
  table grows.  Goals and derivable facts are finite (the standard
  rules never invent entities), so this terminates.

Limitations, by design:

* composition (§3.7) is not evaluated lazily — composed relationship
  names are data-dependent and unbounded; use the materialized closure
  (with ``limit``) for path browsing;
* answers are complete with respect to the *standard* rule mechanism:
  rule heads must be templates (they are — §2.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.facts import Binding, Component, Fact, Template, Variable
from ..core.store import FactStore
from .engine import _checkable
from .rule import Condition, Rule, RuleContext


def canonical_goal(pattern: Template) -> Template:
    """Rename variables positionally so α-equivalent templates are the
    same goal: ``(x, CITES, x)`` and ``(q, CITES, q)`` both become
    ``(_g0, CITES, _g0)``."""
    names: Dict[Variable, Variable] = {}
    components: List[Component] = []
    for component in pattern:
        if isinstance(component, Variable):
            renamed = names.get(component)
            if renamed is None:
                renamed = Variable(f"_g{len(names)}")
                names[component] = renamed
            components.append(renamed)
        else:
            components.append(component)
    return Template(*components)


def lookup_goal(pattern: Template) -> Template:
    """The goal a pattern is answered from.

    Fully ground patterns are answered by *filtering* the goal with
    the target position freed: rule joins generate ground membership
    probes per candidate pair, and tabling each of them separately
    explodes the goal count quadratically in the number of entities.
    Folding them into the per-(source, relationship) goal caps the
    table count and shares derivation work.
    """
    if pattern.is_ground():
        return Template(pattern.source, pattern.relationship,
                        Variable("_g0"))
    return canonical_goal(pattern)


def _unify_head(head: Template, goal: Template) -> Optional[Binding]:
    """Bind head variables against the goal's ground positions.

    Goal variables impose no binding (the body will enumerate);
    repeated goal variables are enforced by the final ``goal.match``
    filter on each derived fact.  Returns None when a ground head
    position clashes with a ground goal position.
    """
    binding: Binding = {}
    for head_component, goal_component in zip(head, goal):
        if isinstance(goal_component, Variable):
            continue
        if isinstance(head_component, Variable):
            bound = binding.get(head_component)
            if bound is None:
                binding[head_component] = goal_component
            elif bound != goal_component:
                return None
        elif head_component != goal_component:
            return None
    return binding


@dataclass
class LazyStats:
    """Work counters for benchmarks and tests."""

    goals: int = 0
    rounds: int = 0
    derived: int = 0
    base_matches: int = 0


class LazyEngine:
    """Tabled top-down evaluation of template queries."""

    def __init__(self, base: FactStore, rules: Sequence[Rule],
                 context: RuleContext,
                 max_rounds: Optional[int] = None):
        self.base = base
        self.rules = list(rules)
        self.context = context
        self.max_rounds = max_rounds
        self._tables: Dict[Template, Set[Fact]] = {}
        #: goal -> goals whose derivation consulted it; when a table
        #: grows, exactly its dependents are re-derived.
        self._dependents: Dict[Template, Set[Template]] = {}
        self._pending: Set[Template] = set()
        self._deriving: Optional[Template] = None
        self.stats = LazyStats()

    # ------------------------------------------------------------------
    # Public interface (mirrors FactStore's matching surface)
    # ------------------------------------------------------------------
    def match(self, pattern: Template,
              binding: Optional[Binding] = None) -> Iterator[Fact]:
        """All stored-or-derivable facts matching ``pattern``."""
        if binding:
            pattern = pattern.substitute(binding)
        goal = lookup_goal(pattern)
        self._ensure(goal)
        self._solve()
        # Snapshot: nested queries may register new goals while the
        # caller is still consuming this one.  Tables already at
        # fixpoint never grow again (their derivations consult only
        # tables fixpointed alongside them), so the snapshot is
        # complete.
        snapshot = list(self._tables[goal])
        if goal == pattern:
            yield from snapshot
            return
        for fact in snapshot:
            if pattern.match(fact) is not None:
                yield fact

    def solutions(self, pattern: Template,
                  binding: Optional[Binding] = None) -> Iterator[Binding]:
        base_binding = binding or {}
        substituted = (pattern.substitute(base_binding)
                       if base_binding else pattern)
        for fact in self.match(substituted):
            extended = substituted.match(fact, base_binding)
            if extended is not None:
                yield extended

    def count_estimate(self, pattern: Template,
                       binding: Optional[Binding] = None) -> int:
        # Estimating without solving would defeat laziness; use the
        # base store's index sizes as the (under-)estimate.
        return self.base.count_estimate(pattern, binding)

    def entities(self) -> Set[str]:
        """The active domain.  The standard rules never invent
        entities, so the base store's domain is the closure's."""
        return self.base.entities()

    def relationships(self) -> Set[str]:
        return self.base.relationships()

    def has_entity(self, entity: str) -> bool:
        return self.base.has_entity(entity)

    def __contains__(self, fact: Fact) -> bool:
        return any(True for _ in self.match(Template(*fact)))

    def __len__(self) -> int:
        # Size of the full derivable set: forces the open goal.
        return sum(1 for _ in self.match(
            Template(Variable("s"), Variable("r"), Variable("t"))))

    def __iter__(self) -> Iterator[Fact]:
        return self.match(
            Template(Variable("s"), Variable("r"), Variable("t")))

    def facts_mentioning(self, entity: str) -> Set[Fact]:
        s, r = Variable("__m1__"), Variable("__m2__")
        result: Set[Fact] = set()
        for pattern in (Template(entity, s, r), Template(s, entity, r),
                        Template(s, r, entity)):
            result.update(self.match(pattern))
        return result

    # ------------------------------------------------------------------
    # Tabling machinery
    # ------------------------------------------------------------------
    def _ensure(self, goal: Template) -> Set[Fact]:
        table = self._tables.get(goal)
        if table is None:
            table = set(self.base.match(goal))
            self.stats.base_matches += len(table)
            self._tables[goal] = table
            self._dependents[goal] = set()
            self._pending.add(goal)
            self.stats.goals += 1
        return table

    def _solve(self) -> None:
        """Run derivation rounds until quiescence.

        Dependency-driven: a goal is (re-)derived when it is new or
        when a table one of its previous derivations consulted has
        grown since — the tabling analogue of semi-naive evaluation.
        """
        while self._pending:
            if (self.max_rounds is not None
                    and self.stats.rounds >= self.max_rounds):
                return
            self.stats.rounds += 1
            batch = list(self._pending)
            self._pending = set()
            grown: Set[Template] = set()
            for goal in batch:
                if self._derive(goal):
                    grown.add(goal)
            for goal in grown:
                self._pending.update(self._dependents.get(goal, ()))

    def _derive(self, goal: Template) -> bool:
        """One top-down derivation pass; True if the table grew."""
        table = self._tables[goal]
        previous_deriving = self._deriving
        self._deriving = goal
        grew = False
        try:
            for rule in self.rules:
                for head in rule.head:
                    seed = _unify_head(head, goal)
                    if seed is None:
                        continue
                    for binding in self._solve_body(rule, dict(seed)):
                        fact = head.substitute(binding).to_fact()
                        if goal.match(fact) is None:
                            continue
                        if fact not in table:
                            table.add(fact)
                            self.stats.derived += 1
                            grew = True
        finally:
            self._deriving = previous_deriving
        return grew

    @staticmethod
    def _openness(atom: Template, bound: Set[Variable]) -> int:
        """How unconstrained an atom is under the current binding —
        the count of its still-free variable positions."""
        return sum(
            1 for c in atom
            if isinstance(c, Variable) and c not in bound)

    def _solve_body(self, rule: Rule,
                    binding: Binding) -> Iterator[Binding]:
        """Join the rule body against the current tables, picking the
        most-bound remaining atom at every step so open goals (whole-
        closure tables) are only registered when truly unavoidable."""

        def extend(atoms: List[Template], current: Binding,
                   remaining: List[Condition]) -> Iterator[Binding]:
            if not atoms:
                if all(c.holds(current, self.context) for c in remaining):
                    yield current
                return
            bound = set(current)
            index = min(range(len(atoms)),
                        key=lambda i: self._openness(atoms[i], bound))
            atom = atoms[index]
            rest_atoms = atoms[:index] + atoms[index + 1:]
            for extended in self._lookup(atom, current):
                now_bound = set(extended)
                ready = _checkable(remaining, now_bound)
                if all(remaining[i].holds(extended, self.context)
                       for i in ready):
                    ready_set = set(ready)
                    rest = [c for i, c in enumerate(remaining)
                            if i not in ready_set]
                    yield from extend(rest_atoms, extended, rest)

        yield from extend(list(rule.body), binding,
                          list(rule.conditions))

    def _lookup(self, atom: Template,
                binding: Binding) -> Iterator[Binding]:
        """Answers for one body atom from the tables (registering the
        goal if new — its table completes over later rounds)."""
        pattern = atom.substitute(binding)
        goal = lookup_goal(pattern)
        table = self._ensure(goal)
        if self._deriving is not None:
            self._dependents[goal].add(self._deriving)
        # Snapshot: a self-recursive rule (e.g. ≺-transitivity) adds to
        # the very table it is reading; additions are picked up by the
        # next fixpoint round.
        for fact in list(table):
            extended = pattern.match(fact, binding)
            if extended is not None:
                yield extended
