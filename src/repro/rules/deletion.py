"""Incremental deletion: the Delete/Rederive (DRed) algorithm.

§6.2 lists "update of data" among the open issues.  Insertions are
monotone and extend the closure in place (:func:`..engine.extend_closure`);
deletions are not — a removed fact may invalidate derivations, which
may invalidate further derivations, while some of the endangered facts
survive via alternative derivations.  DRed handles this in three
classic phases:

1. **Overdelete** — compute the facts with *some* derivation through
   the deleted fact (a fixpoint in deletion space: a derived fact is
   endangered when a rule instantiation that produces it uses an
   endangered premise);
2. **Remove** — take all endangered facts out of the closure (stored
   facts other than the deleted one stay);
3. **Rederive** — endangered facts that still have a one-step
   derivation from surviving facts are put back, and insertion
   propagation (:func:`..engine.extend_closure`'s machinery) restores
   everything downstream of them.

The result equals recomputing the closure from scratch on the surviving
base facts (property-tested in ``tests/test_deletion.py``), at a cost
proportional to the deleted fact's "cone of influence".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..core.facts import Fact, Template
from ..core.store import FactStore
from .engine import (
    ClosureResult,
    Justification,
    _checkable,
    _fire,
    _pivoted_rules,
    _premises,
    _semi_naive_rounds,
)
from .rule import Rule, RuleContext


@dataclass
class DeletionStats:
    """Work counters for tests and benchmarks."""

    overdeleted: int = 0
    rederived: int = 0
    propagated: int = 0


def delete_with_rederivation(result: ClosureResult, base: FactStore,
                             deleted: Fact, rules: Sequence[Rule],
                             context: RuleContext) -> DeletionStats:
    """Maintain a closure under deletion of one base fact.

    Args:
        result: the cached closure; its store is updated **in place**.
        base: the base store, with ``deleted`` already removed from it.
        deleted: the base fact that was removed.
        rules: the enabled rules.
        context: guard context.

    The closure's provenance map (if any) is pruned of endangered
    facts; rederived facts get fresh justifications.
    """
    stats = DeletionStats()
    store = result.store
    if deleted not in store:
        return stats

    # Phase 1: overdelete — fixpoint over "derivations through
    # endangered facts".  Join each rule with one body atom pivoted
    # over the endangered delta and the rest over the (still intact)
    # closure; every head instance present in the closure becomes
    # endangered too.
    endangered: Set[Fact] = {deleted}
    delta: List[Fact] = [deleted]
    pivoted = _pivoted_rules(rules)
    while delta:
        delta_store = FactStore(delta)
        fresh: List[Fact] = []
        for rule, reordered in pivoted:
            arity = len(reordered.body)
            sources = [delta_store] + [store] * (arity - 1)
            for fact, _binding in _fire(reordered, sources, context):
                if fact in store and fact not in endangered:
                    endangered.add(fact)
                    fresh.append(fact)
        delta = fresh

    # Base facts other than the deleted one are never endangered: they
    # are self-supporting.
    endangered = {
        fact for fact in endangered if fact == deleted or fact not in base
    }
    stats.overdeleted = len(endangered)

    # Phase 2: remove.
    for fact in endangered:
        store.discard(fact)
        if result.provenance is not None:
            result.provenance.pop(fact, None)

    # Phase 3: rederive — endangered facts with a one-step derivation
    # from the surviving closure come back; extend_closure-style
    # propagation then restores their consequences.  Goal-directed:
    # only derivations *of endangered facts* are attempted, so the
    # cost tracks the deleted fact's cone of influence, not the heap.
    rederived: List[Fact] = []
    for fact in sorted(endangered):
        if fact in store:
            continue
        justification = _rederive_once(fact, store, rules, context)
        if justification is not None:
            store.add(fact)
            rederived.append(fact)
            if result.provenance is not None:
                result.provenance[fact] = justification
    stats.rederived = len(rederived)

    if rederived:
        before = len(store)
        result.iterations += _semi_naive_rounds(
            store, FactStore(rederived), rules, context,
            result.rule_firings, provenance=result.provenance)
        stats.propagated = len(store) - before

    result.base_count -= 1
    result.derived_count = len(store) - result.base_count
    return stats


def _rederive_once(fact: Fact, store: FactStore, rules: Sequence[Rule],
                   context: RuleContext) -> Optional[Justification]:
    """One-step derivation of ``fact`` from ``store``, if any."""
    from .lazy import _unify_head

    goal = Template(*fact)
    for rule in rules:
        for head in rule.head:
            seed = _unify_head(head, goal)
            if seed is None:
                continue
            for binding in _join_body(rule, dict(seed), store, context):
                derived = head.substitute(binding).to_fact()
                if derived == fact:
                    return Justification(rule.name,
                                         _premises(rule, binding))
    return None


def _join_body(rule: Rule, binding, store: FactStore,
               context: RuleContext):
    """Join a rule body against one store under an initial binding."""
    def extend(index: int, current, remaining):
        if index == len(rule.body):
            if all(c.holds(current, context) for c in remaining):
                yield current
            return
        atom = rule.body[index]
        for extended in store.solutions(atom, current):
            bound = set(extended)
            ready = _checkable(remaining, bound)
            if all(remaining[i].holds(extended, context) for i in ready):
                ready_set = set(ready)
                rest = [c for i, c in enumerate(remaining)
                        if i not in ready_set]
                yield from extend(index + 1, extended, rest)

    yield from extend(0, binding, list(rule.conditions))
