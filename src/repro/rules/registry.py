"""Rule registry with ``include``/``exclude`` (paper §6.1).

"As inference rules are representations of additional facts, they too
may be edited dynamically.  This allows us to turn inference rules off
and on, at will."

Example::

    from repro import Database

    db = Database()
    db.add("JOHN", "∈", "EMPLOYEE")
    db.add("EMPLOYEE", "EARNS", "SALARY")
    assert db.ask("(JOHN, EARNS, SALARY)")
    db.exclude("mem-source")            # turn inheritance off …
    assert not db.ask("(JOHN, EARNS, SALARY)")
    db.include("mem-source")            # … and back on
    assert db.ask("(JOHN, EARNS, SALARY)")
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Union

from ..core.errors import UnknownRuleError
from .builtin import STANDARD_RULES
from .rule import Rule

RuleRef = Union[str, Rule]


class RuleRegistry:
    """Named rules, each independently enabled or disabled.

    Iterating the registry yields the *enabled* rules, in registration
    order — the set the closure engine applies.
    """

    def __init__(self, rules: Optional[Sequence[Rule]] = None,
                 enabled: bool = True):
        self._rules: Dict[str, Rule] = {}
        self._enabled: Dict[str, bool] = {}
        self._compiled = None  # cached CompiledRuleSet for enabled rules
        for rule in (STANDARD_RULES if rules is None else rules):
            self.register(rule, enabled=enabled)

    # ------------------------------------------------------------------
    def register(self, rule: Rule, enabled: bool = True) -> None:
        """Add (or replace) a rule; newly registered rules default on."""
        self._rules[rule.name] = rule
        self._enabled[rule.name] = enabled
        self._compiled = None

    def _name_of(self, ref: RuleRef) -> str:
        name = ref.name if isinstance(ref, Rule) else ref
        if name not in self._rules:
            known = ", ".join(sorted(self._rules))
            raise UnknownRuleError(f"unknown rule {name!r} (known: {known})")
        return name

    def include(self, ref: RuleRef) -> None:
        """Enable a rule (the paper's ``include(rule)``).

        A :class:`Rule` object not yet registered is registered and
        enabled, so ``include`` doubles as dynamic rule addition (§6.1:
        rules "may be edited dynamically").
        """
        if isinstance(ref, Rule) and ref.name not in self._rules:
            self.register(ref, enabled=True)
            return
        self._enabled[self._name_of(ref)] = True
        self._compiled = None

    def exclude(self, ref: RuleRef) -> None:
        """Disable a rule (the paper's ``exclude(rule)``)."""
        self._enabled[self._name_of(ref)] = False
        self._compiled = None

    def remove(self, ref: RuleRef) -> None:
        """Forget a rule entirely."""
        name = self._name_of(ref)
        del self._rules[name]
        del self._enabled[name]
        self._compiled = None

    # ------------------------------------------------------------------
    def is_enabled(self, ref: RuleRef) -> bool:
        return self._enabled[self._name_of(ref)]

    def get(self, name: str) -> Rule:
        return self._rules[self._name_of(name)]

    def __contains__(self, ref: RuleRef) -> bool:
        name = ref.name if isinstance(ref, Rule) else ref
        return name in self._rules

    def __iter__(self) -> Iterator[Rule]:
        return (rule for name, rule in self._rules.items()
                if self._enabled[name])

    def __len__(self) -> int:
        """Number of *enabled* rules."""
        return sum(1 for _ in self)

    def all_rules(self) -> List[Rule]:
        """Every registered rule, enabled or not."""
        return list(self._rules.values())

    def enabled_names(self) -> List[str]:
        return [rule.name for rule in self]

    def snapshot_state(self) -> Dict[str, bool]:
        """Name → enabled map (used by persistence)."""
        return dict(self._enabled)

    def restore_state(self, state: Dict[str, bool]) -> None:
        """Re-apply a saved enable/disable map, ignoring unknown names."""
        for name, enabled in state.items():
            if name in self._rules:
                self._enabled[name] = enabled
        self._compiled = None

    def compiled(self):
        """The :class:`~repro.rules.dispatch.CompiledRuleSet` for the
        currently enabled rules.

        Compilation (pivoting, slot programs, dispatch index, strata)
        costs a few milliseconds, so the result is cached and
        invalidated whenever the registry changes — the dispatched
        engine then reuses it across every closure of the session.
        """
        if self._compiled is None or self._compiled.rules != list(self):
            from .dispatch import compile_ruleset
            self._compiled = compile_ruleset(list(self))
        return self._compiled
