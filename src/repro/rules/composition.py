"""Inference by composition (paper §3.7) with the ``limit(n)``
operator (§6.1).

When the target of one fact is the source of another, their composition
is the fact ``(s1, r1.t1.r2, t2)`` — a new *path* relationship named
after the relationships traversed and the intermediate entity, exactly
as in the paper's ``(TOM, ENROLLED-IN.CS100.TAUGHT-BY, HARRY)``.

Two containment mechanisms from the paper are implemented:

* **Acyclicity guard** — the source of the first fact must differ from
  the target of the second, "otherwise ... an infinite number of
  different composition facts would be generated".
* **Chain-length limit** — ``limit(n)`` bounds the number of primitive
  facts chained: ``n=1`` disables composition, ``n=2`` allows single
  compositions whose results cannot compose further, and so on.
  ``limit(None)`` permits unlimited composition (the paper's n = ∞).

For ``limit(None)`` the paper's endpoint guard is not by itself enough
to terminate on cyclic data (a 3-cycle A→B→C→A extends forever while
its endpoints keep differing), so unlimited composition additionally
restricts chains to *simple paths* — no intermediate entity revisited.
Bounded limits use exactly the paper's guard.  See DESIGN.md §5.

Composition never chains through the special relationships (``≺ ∈ ≈ ↔
⊥``): a path through a generalization edge is not an association
between the endpoints in the paper's sense, and the standard rules
already propagate along those edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.entities import compose_relationship, is_special_relationship
from ..core.facts import Fact
from ..core.store import FactStore

#: ``limit`` value that disables composition entirely.
COMPOSITION_OFF = 1

#: ``limit`` value for unlimited composition (the paper's n = ∞).
UNLIMITED = None


@dataclass
class CompositionResult:
    """Composed facts plus bookkeeping for benchmarks."""

    facts: Set[Fact]
    chain_lengths: Dict[Fact, int]
    rounds: int

    @property
    def count(self) -> int:
        return len(self.facts)


def composable(first: Fact, second: Fact) -> bool:
    """True if ``first`` and ``second`` may be composed (§3.7)."""
    if first.target != second.source:
        return False
    if first.source == second.target:  # the cyclicity guard
        return False
    if is_special_relationship(first.relationship):
        return False
    if is_special_relationship(second.relationship):
        return False
    return True


def compose_pair(first: Fact, second: Fact) -> Fact:
    """The composition of two composable facts."""
    relationship = compose_relationship(
        first.relationship, first.target, second.relationship)
    return Fact(first.source, relationship, second.target)


def compose_closure(store: FactStore,
                    limit: Optional[int] = 2) -> CompositionResult:
    """All composition facts over ``store``, up to chain length ``limit``.

    Args:
        store: the facts to compose (typically the standard-rule
            closure; special-relationship facts are skipped).
        limit: maximum number of primitive facts per chain;
            ``COMPOSITION_OFF`` (1) yields nothing, ``None`` means
            unlimited (n = ∞).

    Returns:
        A :class:`CompositionResult`; ``store`` itself is not modified.

    The evaluation is delta-driven: each round composes only pairs in
    which at least one side is a path discovered in the previous round,
    so chains of length *k* appear in round *k - 1*.
    """
    if limit is not None and limit <= COMPOSITION_OFF:
        return CompositionResult(facts=set(), chain_lengths={}, rounds=0)

    primitives: List[Fact] = [
        f for f in store if not is_special_relationship(f.relationship)
    ]
    by_source: Dict[str, List[Fact]] = {}
    by_target: Dict[str, List[Fact]] = {}
    lengths: Dict[Fact, int] = {}
    visited: Dict[Fact, frozenset] = {}
    simple_paths_only = limit is None
    for fact in primitives:
        lengths[fact] = 1
        visited[fact] = frozenset((fact.source, fact.target))
        by_source.setdefault(fact.source, []).append(fact)
        by_target.setdefault(fact.target, []).append(fact)

    composed: Set[Fact] = set()
    delta: List[Fact] = list(primitives)
    rounds = 0

    def try_compose(first: Fact, second: Fact, fresh: List[Fact]) -> None:
        total = lengths[first] + lengths[second]
        if limit is not None and total > limit:
            return
        if not composable(first, second):
            return
        if simple_paths_only:
            # Chains may only meet at the join entity; this keeps
            # unlimited composition finite on cyclic data.  Self-loops
            # can never lie on a simple path (their visited set is a
            # single entity, which would defeat the overlap check and
            # let names grow forever).
            if (first.source == first.target
                    or second.source == second.target):
                return
            overlap = visited[first] & visited[second]
            if overlap != frozenset((first.target,)):
                return
        result = compose_pair(first, second)
        if result in composed or result in store:
            return
        composed.add(result)
        lengths[result] = total
        visited[result] = visited[first] | visited[second]
        fresh.append(result)

    while delta:
        rounds += 1
        fresh: List[Fact] = []
        for new_fact in delta:
            # new fact on the left: (new) ∘ (existing)
            for right in by_source.get(new_fact.target, ()):
                try_compose(new_fact, right, fresh)
            # new fact on the right: (existing) ∘ (new)
            for left in by_target.get(new_fact.source, ()):
                if left is new_fact:
                    continue  # already tried above when left == right
                try_compose(left, new_fact, fresh)
        for fact in fresh:
            by_source.setdefault(fact.source, []).append(fact)
            by_target.setdefault(fact.target, []).append(fact)
        delta = fresh
    return CompositionResult(facts=composed, chain_lengths=lengths,
                             rounds=rounds)
