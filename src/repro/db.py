"""The public facade: a loosely structured database (paper §2.6).

"A loosely structured database is a set of facts P and a set of rules
R, such that the closure of P under R is free of contradictions."

:class:`Database` owns the base fact heap, the rule registry, the
composition limit, and a cached closure; it exposes the standard query
language (§2.7), navigation (§4), probing (§5), and the §6.1 operators.

Example::

    from repro import Database

    db = Database()
    db.add("JOHN", "∈", "EMPLOYEE")
    db.add("EMPLOYEE", "EARNS", "SALARY")
    db.query("(JOHN, EARNS, y)")        # {("SALARY",)}
    print(db.navigate("(JOHN, *, *)").render())
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

from .browse.lattice import ISA_PATTERN, GeneralizationLattice
from .browse.navigation import NavigationResult, NavigationSession, navigate
from .browse.retraction import DEFAULT_MAX_WAVES, ProbeResult, probe
from .core.entities import (
    CONTRA, EQ, GE, GT, INV, LE, LT, NE,
    CLASS_RELATIONSHIP, INDIVIDUAL_RELATIONSHIP, MEMBER,
)
from .core.cache import LRUCache
from .core.errors import IntegrityError, QueryError
from .core.facts import Fact, Template, fact as make_fact
from .core.store import FactStore
from .operators.definitions import OperatorRegistry
from .operators.ops import (
    FunctionView,
    RelationTable,
    relation as relation_op,
    try_ as try_op,
)
from .query.ast import Query
from .query.evaluate import Evaluator
from .query.exec import CompiledEvaluator
from .query.parser import parse_query, parse_template
from .query.plancache import PlanCache
from .rules.composition import COMPOSITION_OFF, compose_closure
from .rules.dispatch import dispatched_closure
from .rules.engine import (
    ClosureResult,
    extend_closure,
    naive_closure,
    semi_naive_closure,
)
from .rules.integrity import Diagnosis, Violation, diagnose, find_contradictions
from .rules.deletion import DeletionStats, delete_with_rederivation
from .rules.lazy import LazyEngine
from .rules.provenance import (
    DerivationTree,
    ProvenanceError,
    add_composition_provenance,
    explain_fact,
)
from .rules.registry import RuleRegistry
from .rules.rule import RelationshipClassifier, Rule, RuleContext
from .virtual.computed import FactView, VirtualRegistry
from .virtual.special import standard_virtual_registry

#: Facts every database is seeded with (unless ``with_axioms=False``):
#: ``↔`` and ``⊥`` are their own inverses (§3.4, §3.5), and the
#: mathematical comparators are pairwise contradictory (§3.5–3.6).
AXIOM_FACTS: Tuple[Fact, ...] = (
    Fact(INV, INV, INV),
    Fact(CONTRA, INV, CONTRA),
    Fact(LT, CONTRA, GT),
    Fact(LT, CONTRA, EQ),
    Fact(GT, CONTRA, EQ),
    Fact(EQ, CONTRA, NE),
    Fact(LE, CONTRA, GT),
    Fact(GE, CONTRA, LT),
)


class Database:
    """A heap of facts plus rules, with browsing as the principal
    retrieval method."""

    def __init__(self, facts: Iterable[Fact] = (), *,
                 with_axioms: bool = True,
                 auto_check: bool = False,
                 engine: str = "dispatched",
                 query_engine: str = "compiled",
                 incremental: bool = True,
                 trace: bool = False,
                 observe: bool = False,
                 virtual: Optional[VirtualRegistry] = None):
        """
        Args:
            facts: initial facts.
            with_axioms: seed :data:`AXIOM_FACTS`.
            auto_check: verify the closure stays contradiction-free on
                every mutation (rolls the mutation back on violation).
            engine: ``"dispatched"`` (default; compiled joins with
                relationship-indexed dispatch and stratified rounds),
                ``"semi-naive"`` (the interpreted delta engine), or
                ``"naive"`` (the F2 baseline).  All three produce
                identical closures.
            query_engine: ``"compiled"`` (default; the set-at-a-time
                plan executor of :mod:`repro.query.exec`) or
                ``"reference"`` (the tuple-at-a-time backtracking
                evaluator).  Both produce identical query values.
            incremental: maintain the cached closure in place when
                facts are *inserted* (deletions always recompute);
                disable to force full recomputation on every mutation
                (benchmark F8 compares the two).
            trace: record derivation provenance so :meth:`why` can
                show why any closure fact holds (small time/memory
                overhead on closure computation).
            observe: turn on process-wide obs tracing
                (:func:`repro.obs.enable_tracing`) so spans and
                counters are collected for every operation; equivalent
                to the shell's ``trace on``.  Distinct from ``trace``,
                which records *provenance*, not execution behavior.
            virtual: override the virtual-relation registry (tests).
        """
        if engine not in ("dispatched", "semi-naive", "naive"):
            raise ValueError(f"unknown engine: {engine!r}")
        if query_engine not in ("compiled", "reference"):
            raise ValueError(f"unknown query engine: {query_engine!r}")
        from .views import ViewCatalog

        self._base = FactStore()
        self.rules = RuleRegistry()
        self.operators = OperatorRegistry()
        self.views = ViewCatalog(self)
        self.engine = engine
        self.query_engine = query_engine
        self.auto_check = auto_check
        self.incremental = incremental
        self.trace = trace
        self._composition_limit: Optional[int] = COMPOSITION_OFF
        self._virtual = virtual if virtual is not None \
            else standard_virtual_registry()
        # The closure is cached in two layers: the standard-rule
        # closure (maintainable incrementally under insertion) and the
        # full closure (standard + composition facts).
        self._standard_result: Optional[ClosureResult] = None
        self._full_result: Optional[ClosureResult] = None
        self._lazy_engine: Optional[LazyEngine] = None
        self._view: Optional[FactView] = None
        # The generalization lattice (browse.lattice) is maintained,
        # not rebuilt: insertions that derive new ≺ facts patch it in
        # place, mutations that touch no ≺ fact leave it alone, and
        # only ≺ deletions / full invalidations drop it.
        self._hierarchy: Optional[GeneralizationLattice] = None
        self._hierarchy_bound: Optional[GeneralizationLattice] = None
        self._hierarchy_shared = False
        self._hierarchy_isa = -1
        self._hierarchy_rebuilds = 0
        self._hierarchy_patches = 0
        # Versioned result cache for repeated queries and navigation
        # neighborhoods (the paper's principal retrieval mode, §5).
        # Keys embed _cache_token(), so entries go stale for free when
        # the base version moves or the configuration epoch bumps.
        self._result_cache = LRUCache()
        self._cache_epoch = 0
        # Parse + compiled-plan cache, keyed on canonical query text
        # and the configuration epoch; shared with snapshots so plans
        # stay warm across publications (repro.query.plancache).
        self._plan_cache = PlanCache()
        self._on_mutation = None  # set by storage.DurableSession.attach
        if observe:
            from .obs import enable_tracing
            enable_tracing()
        if with_axioms:
            self._base.add_all(AXIOM_FACTS)
        for initial in facts:
            self._base.add(initial)

    # ------------------------------------------------------------------
    # Facts
    # ------------------------------------------------------------------
    @property
    def facts(self) -> FactStore:
        """The base fact heap (stored facts only, no closure)."""
        return self._base

    def __len__(self) -> int:
        return len(self._base)

    def __contains__(self, item: Fact) -> bool:
        """Membership in the *closure* (stored, derived, or virtual)."""
        return item in self.view()

    def add(self, source: str, relationship: str, target: str) -> bool:
        """Add one fact from its three components."""
        return self.add_fact(make_fact(source, relationship, target))

    def add_fact(self, new_fact: Fact) -> bool:
        """Add a fact; returns True if it was new.

        With ``auto_check`` enabled, an addition whose closure would
        contain a contradiction is rolled back and raises
        :class:`~repro.core.errors.IntegrityError` (§2.6: the closure
        must be free of contradictions).
        """
        if not self._base.add(new_fact):
            return False
        if self._can_extend_incrementally(new_fact):
            compiled = (self.rules.compiled()
                        if self.engine == "dispatched" else None)
            extend_closure(self._standard_result, (new_fact,),
                           list(self.rules), self.rule_context(),
                           compiled=compiled)
            # Composition (if on) and the derived caches rebuild lazily
            # from the extended standard closure.
            if self._full_result is not self._standard_result:
                self._full_result = None
            self._lazy_engine = None
            self._view = None
            self._maintain_hierarchy(deletion=False)
        else:
            self._invalidate()
        if self.auto_check:
            violations = self.check_integrity()
            if violations:
                self._base.discard(new_fact)
                self._invalidate()
                raise IntegrityError(
                    f"adding {new_fact} contradicts the closure",
                    violations)
        if self._on_mutation is not None:
            self._on_mutation("add", new_fact)
        return True

    def _can_extend_incrementally(self, new_fact: Fact) -> bool:
        """True if the cached closure can be maintained in place.

        Insertions are monotone under the standard rules *except* for
        relationship re-classification: declaring ``(r, ∈, R_c)``
        retroactively blocks inferences already drawn, so those
        declarations force recomputation.
        """
        if not self.incremental \
                or self.engine not in ("dispatched", "semi-naive"):
            return False
        if self._standard_result is None:
            return False
        if (new_fact.relationship == MEMBER and new_fact.target in (
                CLASS_RELATIONSHIP, INDIVIDUAL_RELATIONSHIP)):
            return False
        return True

    def _maintain_hierarchy(self, deletion: bool) -> None:
        """Keep the cached generalization lattice consistent across an
        incremental closure update.

        The check is O(1): insertions only ever *grow* the standard
        closure's ``≺`` fact set and Delete/Rederive only ever shrinks
        it, so comparing the indexed ``≺`` count against the count the
        lattice was built at detects any change exactly.  Unchanged
        count → the mutation touched no generalization/synonym fact and
        the lattice stays as is (the common case this exists for).
        New ``≺`` facts are diffed against the lattice's ingested-pair
        set and patched in; deletions drop the lattice for a lazy
        rebuild.
        """
        lattice = self._hierarchy
        if lattice is None:
            return
        store = self._standard_result.store
        count = store.count_estimate(ISA_PATTERN)
        if count == self._hierarchy_isa:
            return
        if deletion:
            self._hierarchy = None
            self._hierarchy_bound = None
            self._hierarchy_isa = -1
            return
        if self._hierarchy_shared:
            # Published snapshots hold this structure: patch a copy.
            lattice = lattice.structural_copy()
            self._hierarchy = lattice
            self._hierarchy_bound = None
            self._hierarchy_shared = False
        lattice.add_isa_pairs(
            (f.source, f.target) for f in store.match(ISA_PATTERN))
        self._hierarchy_isa = count
        self._hierarchy_patches += 1

    def add_facts(self, new_facts: Iterable[Fact]) -> int:
        """Add many facts; returns the number actually new."""
        return sum(1 for f in new_facts if self.add_fact(f))

    def remove_fact(self, old_fact: Fact) -> bool:
        """Remove a stored fact; returns True if it was present.

        With incremental maintenance on, the cached closure is updated
        by Delete/Rederive (:mod:`repro.rules.deletion`) instead of
        being recomputed.
        """
        if not self._base.discard(old_fact):
            return False
        if self._can_extend_incrementally(old_fact):
            delete_with_rederivation(
                self._standard_result, self._base, old_fact,
                list(self.rules), self.rule_context())
            if self._full_result is not self._standard_result:
                self._full_result = None
            self._lazy_engine = None
            self._view = None
            self._maintain_hierarchy(deletion=True)
        else:
            self._invalidate()
        if self._on_mutation is not None:
            self._on_mutation("remove", old_fact)
        return True

    def apply_delta(self, adds: Iterable[Fact] = (),
                    removes: Iterable[Fact] = ()) -> Tuple[int, int]:
        """Apply a replicated net-effect delta batch.

        This is the replica-side entry point of the log-shipping
        design (:mod:`repro.serve.replica`): the primary's writer
        coalesces each published batch into disjoint net ``adds`` and
        ``removes``, and a replica applies them here.  Removals go
        first (a batch can free an entity name an add then reuses),
        then insertions; both run through the normal mutation paths,
        so with ``incremental`` on and a warm closure the cached
        closure is maintained in place — Delete/Rederive for removals,
        incremental extension for insertions — with no full recompute.

        Application is idempotent: re-adding a present fact and
        re-removing an absent one are no-ops, so a bootstrap that
        already contains a prefix of the delta log can safely replay
        the overlapping suffix.  Returns ``(added, removed)`` counts.
        """
        removed = sum(1 for f in removes if self.remove_fact(f))
        added = sum(1 for f in adds if self.add_fact(f))
        return added, removed

    # ------------------------------------------------------------------
    # Snapshots (repro.serve)
    # ------------------------------------------------------------------
    def snapshot(self) -> "Database":
        """A read-only, point-in-time clone for concurrent readers.

        The clone's base heap is an independent :meth:`FactStore.copy`
        (frozen, so any mutation attempt raises
        :class:`~repro.core.errors.FrozenStoreError`), the cached
        closure layers are copied so later incremental maintenance of
        *this* database cannot tear them, and the rule registry state
        is duplicated.  The version-keyed result cache is **shared**:
        cache keys embed the store version and configuration epoch, so
        entries computed against one snapshot are valid for any other
        snapshot at the same version — publishing a snapshot keeps the
        cache warm for free.

        This is the publication primitive of
        :class:`repro.serve.DatabaseService`: the single writer mutates
        the master database, then publishes ``master.snapshot()`` for
        readers to use lock-free.  Lazy caches on a snapshot (view,
        hierarchy, full closure) are benignly racy — concurrent readers
        may compute one twice, but every computed value is identical;
        the service warms them before publishing.
        """
        from .views import ViewCatalog

        clone = Database.__new__(Database)
        clone._base = self._base.copy().freeze()
        clone.rules = RuleRegistry(self.rules.all_rules())
        clone.rules.restore_state(self.rules.snapshot_state())
        clone.rules._compiled = self.rules._compiled  # reuse compilation
        clone.operators = self.operators
        clone.views = ViewCatalog(clone)
        clone.views._definitions = dict(self.views._definitions)
        clone.engine = self.engine
        clone.query_engine = self.query_engine
        clone.auto_check = False       # snapshots never mutate
        clone.incremental = False      # nor maintain anything in place
        clone.trace = self.trace
        clone._composition_limit = self._composition_limit
        clone._virtual = self._virtual
        clone._standard_result = self._copy_result(self._standard_result)
        if self._full_result is self._standard_result:
            clone._full_result = clone._standard_result
        else:
            clone._full_result = self._copy_result(self._full_result)
        clone._lazy_engine = None
        clone._view = None
        # The lattice structure is shared with the clone; the master
        # switches to copy-on-patch so a published snapshot can never
        # observe a half-applied patch.
        clone._hierarchy = self._hierarchy
        clone._hierarchy_bound = None
        clone._hierarchy_isa = self._hierarchy_isa
        clone._hierarchy_shared = self._hierarchy is not None
        clone._hierarchy_rebuilds = 0
        clone._hierarchy_patches = 0
        if self._hierarchy is not None:
            self._hierarchy_shared = True
        clone._result_cache = self._result_cache   # shared (thread-safe)
        clone._plan_cache = self._plan_cache       # shared (thread-safe)
        clone._cache_epoch = self._cache_epoch
        clone._on_mutation = None
        return clone

    @staticmethod
    def _copy_result(result: Optional[ClosureResult]) \
            -> Optional[ClosureResult]:
        """An independent copy of a cached closure result (the store is
        copied and frozen; statistics are duplicated)."""
        if result is None:
            return None
        return ClosureResult(
            store=result.store.copy().freeze(),
            base_count=result.base_count,
            derived_count=result.derived_count,
            iterations=result.iterations,
            rule_firings=dict(result.rule_firings),
            rule_times=dict(result.rule_times),
            # Copied, not shared: incremental extension of the master
            # inserts into its provenance dict in place.
            provenance=(dict(result.provenance)
                        if result.provenance is not None else None),
        )

    def compact_store(self, closure: bool = True) -> "Database":
        """Re-found this database's heap on interned columnar storage.

        The base heap (and, with ``closure=True``, any cached closure
        store) is rebuilt as an
        :class:`~repro.core.interned.InternedFactStore`: one frozen
        columnar generation of interned-id arrays with CSR indexes,
        plus an empty mutable overlay.  Store versions are preserved,
        so every entry in the versioned result cache stays valid — the
        representation changes, the database state does not.

        Compaction pays one O(n log n) rebuild to make everything
        after it cheaper: template matching becomes integer probes,
        :meth:`~repro.core.store.FactStore.copy` (snapshot publication,
        closure seeding) shares the generation instead of duplicating
        index dicts, and :meth:`ColumnarGeneration.share
        <repro.core.interned.ColumnarGeneration.share>` can place the
        generation in shared memory for the replica pool.  Mutations
        accumulate in the overlay; call again when
        ``facts.overlay_size`` grows large.  Returns ``self``.
        """
        from .core.interned import InternedFactStore

        base = self._base
        if not isinstance(base, InternedFactStore) \
                or base.overlay_size:
            compacted = InternedFactStore.from_facts(
                base, version=base.version)
            if base.frozen:
                compacted.freeze()
            self._base = compacted
        if closure:
            for attr in ("_standard_result", "_full_result"):
                result = getattr(self, attr)
                if result is None:
                    continue
                if attr == "_full_result" \
                        and result is self._standard_result:
                    continue      # same object: store already swapped
                store = result.store
                if isinstance(store, InternedFactStore) \
                        and not store.overlay_size:
                    continue
                interned = InternedFactStore.from_facts(
                    store, version=store.version)
                if store.frozen:
                    interned.freeze()
                result.store = interned
            # Lazy caches hold references to the old stores; let them
            # rebuild over the interned ones on next use.  The lattice
            # survives: compaction changes the representation, not the
            # facts, so only its store binding must refresh.
            self._view = None
            self._lazy_engine = None
            self._hierarchy_bound = None
        return self

    # ------------------------------------------------------------------
    # Relationship classification (§2.2)
    # ------------------------------------------------------------------
    def declare_class_relationship(self, relationship: str) -> bool:
        """Put a relationship into R_c (no inheritance to instances)."""
        return self.add(relationship, MEMBER, CLASS_RELATIONSHIP)

    def declare_individual_relationship(self, relationship: str) -> bool:
        """Put a relationship into R_i (the default)."""
        return self.add(relationship, MEMBER, INDIVIDUAL_RELATIONSHIP)

    # ------------------------------------------------------------------
    # Rules and composition (§3, §6.1)
    # ------------------------------------------------------------------
    def define_rule(self, name: str, text: str,
                    is_constraint: bool = False) -> Rule:
        """Define (and enable) a rule from text (§2.5–2.6)::

            db.define_rule("age-positive", "(x, in, AGE) => (x, >, 0)",
                           is_constraint=True)
            db.define_rule("sym", "(a, MARRIED-TO, b) => (b, MARRIED-TO, a)")
        """
        from .rules.parse import parse_rule

        rule = parse_rule(text, name, is_constraint=is_constraint)
        self.rules.include(rule)
        self._invalidate()
        return rule

    def include(self, rule: Union[str, Rule]) -> None:
        """Enable a rule — the paper's ``include(rule)``."""
        self.rules.include(rule)
        self._invalidate()

    def exclude(self, rule: Union[str, Rule]) -> None:
        """Disable a rule — the paper's ``exclude(rule)``."""
        self.rules.exclude(rule)
        self._invalidate()

    def limit(self, n: Optional[int]) -> None:
        """Bound composition chains — the paper's ``limit(n)`` (§6.1).

        ``limit(1)`` disables composition (the default); ``limit(None)``
        permits unlimited composition.
        """
        if n is not None and n < 1:
            raise ValueError("composition limit must be >= 1 (or None)")
        self._composition_limit = n
        self._invalidate()

    @property
    def composition_limit(self) -> Optional[int]:
        return self._composition_limit

    @composition_limit.setter
    def composition_limit(self, n: Optional[int]) -> None:
        self.limit(n)

    # ------------------------------------------------------------------
    # Closure (§2.6)
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._standard_result = None
        self._full_result = None
        self._lazy_engine = None
        self._view = None
        self._hierarchy = None
        self._hierarchy_bound = None
        self._hierarchy_isa = -1
        # Rule/limit/classification changes alter results without
        # necessarily moving the base version; the epoch covers them.
        self._cache_epoch += 1

    def _cache_token(self) -> Tuple[int, int, Optional[int]]:
        """What query/navigation cache keys embed: any answer-changing
        event moves at least one component.  Base mutations move the
        store version (including the incremental-extension path, which
        bypasses :meth:`_invalidate`); everything else bumps the epoch."""
        return (self._base.version, self._cache_epoch,
                self._composition_limit)

    def rule_context(self) -> RuleContext:
        return RuleContext(classifier=RelationshipClassifier(self._base))

    @property
    def _composition_enabled(self) -> bool:
        return (self._composition_limit is None
                or self._composition_limit > COMPOSITION_OFF)

    def standard_closure(self) -> ClosureResult:
        """The closure under the enabled rules, *without* composition
        facts — the layer incremental maintenance extends in place."""
        if self._standard_result is None:
            if self.engine == "dispatched":
                self._standard_result = dispatched_closure(
                    self._base, list(self.rules), self.rule_context(),
                    trace=self.trace, compiled=self.rules.compiled())
            else:
                engine = (semi_naive_closure
                          if self.engine == "semi-naive"
                          else naive_closure)
                self._standard_result = engine(
                    self._base, list(self.rules), self.rule_context(),
                    trace=self.trace)
            self._full_result = None
        return self._standard_result

    def closure(self) -> ClosureResult:
        """The closure of the facts under the enabled rules, cached
        until the next mutation.  Composition facts (bounded by the
        limit) are folded into the closed store."""
        if self._full_result is None:
            standard = self.standard_closure()
            if not self._composition_enabled:
                self._full_result = standard
            else:
                combined = standard.store.copy()
                composed = compose_closure(standard.store,
                                           self._composition_limit)
                added = combined.add_all(composed.facts)
                provenance = standard.provenance
                if provenance is not None:
                    add_composition_provenance(
                        provenance, composed.chain_lengths,
                        composed.facts)
                self._full_result = ClosureResult(
                    store=combined,
                    base_count=standard.base_count,
                    derived_count=standard.derived_count + added,
                    iterations=standard.iterations,
                    rule_firings=dict(standard.rule_firings),
                    rule_times=dict(standard.rule_times),
                    provenance=provenance,
                )
        return self._full_result

    def view(self) -> FactView:
        """Closure + virtual relations: what queries evaluate against."""
        if self._view is None:
            self._view = FactView(self.closure().store, self._virtual)
        return self._view

    def lazy_engine(self) -> LazyEngine:
        """The query-driven (tabled) inference engine over the enabled
        rules — derives on demand instead of materializing the closure.
        Composition facts are not available lazily (see
        :mod:`repro.rules.lazy`); cached until the next mutation."""
        if self._lazy_engine is None:
            self._lazy_engine = LazyEngine(
                self._base, list(self.rules), self.rule_context())
        return self._lazy_engine

    def lazy_view(self) -> FactView:
        """Lazy engine + virtual relations, behind the view interface."""
        return FactView(self.lazy_engine(), self._virtual)

    def query_lazy(self, query: Union[str, Query]) -> Set[tuple]:
        """Evaluate a query with on-demand inference (no closure
        materialization).  Equivalent to :meth:`query` for everything
        except composed relationships."""
        if isinstance(query, str):
            query = parse_query(query)
        return Evaluator(self.lazy_view()).evaluate(query)

    def hierarchy(self) -> GeneralizationLattice:
        """The generalization lattice of the closure.

        Built lazily and then *maintained*: insertions deriving new
        ``≺`` facts patch the structure in place, mutations that touch
        no generalization/synonym fact leave it untouched, and the
        structure survives ``compact_store()`` and snapshot
        publication (snapshots share it copy-on-patch).  Returns a view
        bound to the current closure store, so ``knows`` and
        ``closest_known`` always see the live active domain.
        """
        store = self.closure().store
        if self._hierarchy is None:
            self._hierarchy = GeneralizationLattice.from_store(store)
            self._hierarchy_bound = None
            self._hierarchy_shared = False
            self._hierarchy_isa = self.standard_closure().store \
                .count_estimate(ISA_PATTERN)
            self._hierarchy_rebuilds += 1
        bound = self._hierarchy_bound
        if bound is None or bound.store is not store \
                or not bound.shares_core(self._hierarchy):
            bound = self._hierarchy.with_store(store)
            self._hierarchy_bound = bound
        return bound

    # ------------------------------------------------------------------
    # Integrity (§2.5, §3.5)
    # ------------------------------------------------------------------
    def check_integrity(self) -> List[Violation]:
        """All contradictions in the closure (empty = consistent)."""
        return find_contradictions(self.closure().store)

    def verify(self) -> None:
        """Raise :class:`IntegrityError` unless the closure is free of
        contradictions."""
        violations = self.check_integrity()
        if violations:
            summary = "; ".join(str(v) for v in violations[:5])
            raise IntegrityError(
                f"{len(violations)} contradiction(s) in the closure:"
                f" {summary}", violations)

    def diagnose(self) -> List[Diagnosis]:
        """Trace every contradiction to the stored facts responsible
        (requires ``trace=True``) — what to remove to repair §2.6's
        "free of contradictions" invariant."""
        violations = self.check_integrity()
        if not violations:
            return []
        result = self.closure()
        if result.provenance is None:
            raise ProvenanceError(
                "diagnosis needs provenance — create the database with"
                " Database(trace=True)")
        return diagnose(violations, self._base, result.provenance)

    # ------------------------------------------------------------------
    # Provenance
    # ------------------------------------------------------------------
    def why(self, fact: Union[Fact, str]) -> DerivationTree:
        """The derivation tree of a closure fact (requires
        ``trace=True``).

        Accepts a :class:`Fact` or template text such as
        ``"(JOHN, EARNS, SALARY)"`` (which must be ground).  Virtual
        facts (mathematical, endpoint) are reported as ``[virtual]``
        leaves.
        """
        if isinstance(fact, str):
            fact = parse_template(fact).to_fact()
        if fact in self._base:
            return DerivationTree(fact=fact, rule=None)
        result = self.closure()
        if result.provenance is None:
            raise ProvenanceError(
                "provenance tracing is off — create the database with"
                " Database(trace=True)")
        if fact in result.provenance:
            return explain_fact(fact, self._base, result.provenance)
        if fact in self.view():
            return DerivationTree(fact=fact, rule="virtual")
        raise ProvenanceError(f"{fact} is not in the closure")

    # ------------------------------------------------------------------
    # Standard queries (§2.7)
    # ------------------------------------------------------------------
    def evaluator(self) -> Evaluator:
        cls = (CompiledEvaluator if self.query_engine == "compiled"
               else Evaluator)
        return cls(self.view(), cache=self._result_cache,
                   cache_token=self._cache_token(),
                   plans=self._plan_cache,
                   plan_epoch=(self._cache_epoch,
                               self._composition_limit))

    def query(self, query: Union[str, Query]) -> Set[tuple]:
        """The value {Q} of a query: the set of satisfying tuples.

        Text goes straight to the evaluator: the plan cache parses and
        compiles it at most once per canonical spelling (per
        configuration epoch) — :meth:`ask` and :meth:`succeeds` share
        the same entries.
        """
        return self.evaluator().evaluate(query)

    def ask(self, query: Union[str, Query]) -> bool:
        """Truth value of a proposition (closed formula)."""
        return self.evaluator().ask(query)

    def succeeds(self, query: Union[str, Query]) -> bool:
        """True if the query has a non-empty value — the §5 probe
        predicate (a query *fails* when it succeeds for no tuple)."""
        return self.evaluator().succeeds(query)

    def match(self, pattern: Union[str, Template]) -> List[Fact]:
        """All closure facts matching one template."""
        if isinstance(pattern, str):
            pattern = parse_template(pattern)
        return sorted(set(self.view().match(pattern)))

    # ------------------------------------------------------------------
    # Browsing (§4, §5)
    # ------------------------------------------------------------------
    def navigate(self, pattern: Union[str, Template]) -> NavigationResult:
        """One navigation (star-template) query."""
        return navigate(self.view(), pattern, cache=self._result_cache,
                        cache_token=self._cache_token())

    def session(self) -> NavigationSession:
        """Start an interactive navigation session."""
        return NavigationSession(self.view(), cache=self._result_cache,
                                 cache_token=self._cache_token)

    def probe(self, query: Union[str, Query],
              max_waves: int = DEFAULT_MAX_WAVES,
              engine: Optional[str] = None) -> ProbeResult:
        """Evaluate with automatic retraction on failure (§5.2).

        By default the retraction search runs through the configured
        ``query_engine`` with the shared plan cache and versioned
        result cache (completed menus are cached there too, keyed like
        query results).  ``engine`` (``"compiled"`` / ``"reference"``)
        is the equivalence suite's escape hatch: it probes through a
        bare evaluator of that engine — no plan cache, no result
        cache, no menu cache — so cross-engine comparisons can never
        be satisfied by a cache hit.
        """
        if engine is None:
            return probe(self.evaluator(), query, self.hierarchy(),
                         max_waves=max_waves,
                         cache=self._result_cache,
                         cache_token=self._cache_token())
        if engine not in ("compiled", "reference"):
            raise ValueError(f"unknown query engine: {engine!r}")
        cls = CompiledEvaluator if engine == "compiled" else Evaluator
        return probe(cls(self.view()), query, self.hierarchy(),
                     max_waves=max_waves)

    # ------------------------------------------------------------------
    # Operators (§6.1)
    # ------------------------------------------------------------------
    def try_(self, entity: str) -> List[Fact]:
        """``try(e)``: every fact mentioning the entity."""
        return try_op(self.view(), entity)

    def relation(self, class_entity: str,
                 *columns: Tuple[str, str]) -> RelationTable:
        """``relation(s, r1 t1, …)``: a structured (non-1NF) view."""
        return relation_op(self.view(), class_entity, *columns)

    def function(self, relationship: str) -> FunctionView:
        """View a relationship through the functional model (§6.1)."""
        return FunctionView(self.view(), relationship)

    def explain(self, query: Union[str, Query]):
        """Explain how a query will be evaluated (planner order,
        estimates, safety; plus the compiled operator tree when the
        compiled engine is active)."""
        from .query.explain import explain as explain_query
        return explain_query(self.view(), query,
                             engine=self.query_engine)

    def explain_analyze(self, query: Union[str, Query]):
        """Run a query under a scoped tracer and report the plan next
        to what actually executed: per-operator (compiled) or
        per-conjunct (reference) estimated cost vs rows produced,
        wall/CPU time, and evaluator counters."""
        from .query.explain import explain_analyze as analyze_query
        return analyze_query(self.view(), query,
                             engine=self.query_engine)

    def define(self, name: str, definition) -> None:
        """Define a new retrieval operator (§6)."""
        self.operators.define(name, definition)

    def invoke(self, name: str, *arguments):
        """Invoke a user-defined operator."""
        return self.operators.invoke(name, self, *arguments)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Size/derivation statistics (used by benches and examples).

        ``rule_firings`` totals come from the last closure computation
        (incremental extensions accumulate into them); ``rule_times``
        is non-empty only when obs tracing was enabled during the
        computation.
        """
        closure = self.closure()
        return {
            "base_facts": len(self._base),
            "closure_facts": len(closure.store),
            "derived_facts": len(closure.store) - len(self._base),
            "entities": len(self._base.entities()),
            "relationships": len(self._base.relationships()),
            "enabled_rules": self.rules.enabled_names(),
            "composition_limit": self._composition_limit,
            "query_engine": self.query_engine,
            "iterations": closure.iterations,
            "rule_firings": dict(closure.rule_firings),
            "rule_times": dict(closure.rule_times),
            "result_cache": self._result_cache.stats(),
            "plan_cache": self._plan_cache.stats(),
            "hierarchy": self._hierarchy_stats(),
        }

    def _hierarchy_stats(self) -> dict:
        """Lattice lifecycle counters: how often this database rebuilt
        the generalization lattice from scratch vs patched it in place
        (the over-invalidation regression guard)."""
        stats = {
            "rebuilds": self._hierarchy_rebuilds,
            "patches": self._hierarchy_patches,
            "cached": self._hierarchy is not None,
        }
        if self._hierarchy is not None:
            stats.update(self._hierarchy.stats())
        return stats

    def __repr__(self) -> str:
        return (f"Database({len(self._base)} facts,"
                f" {len(self.rules)} rules enabled,"
                f" limit={self._composition_limit})")
