"""User-defined retrieval operators (paper §6).

"One possible extension is to provide a definition facility to
implement new retrieval operators, based on the standard query
language."  An operator definition is a named query *text* with
``$1 … $n`` placeholders; invoking the operator substitutes the
arguments and evaluates the resulting query.  Callable definitions are
also accepted for operators (like ``relation``) whose output is not a
plain value set.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Union

from ..core.errors import QueryError

_PLACEHOLDER_RE = re.compile(r"\$(\d+)")

Definition = Union[str, Callable]


class OperatorRegistry:
    """Named user-defined operators over a database."""

    def __init__(self):
        self._definitions: Dict[str, Definition] = {}

    def define(self, name: str, definition: Definition) -> None:
        """Register an operator.

        Args:
            name: the operator's name.
            definition: either a query template string with ``$i``
                placeholders, e.g.
                ``"(x, ∈, $1) and (x, $2, $3)"``, or a callable taking
                ``(database, *arguments)``.
        """
        if not name:
            raise QueryError("operator name must be non-empty")
        self._definitions[name] = definition

    def undefine(self, name: str) -> None:
        del self._definitions[name]

    def __contains__(self, name: str) -> bool:
        return name in self._definitions

    def names(self) -> List[str]:
        return sorted(self._definitions)

    def expand(self, name: str, arguments) -> str:
        """The query text of a string-defined operator, with
        placeholders substituted (quoted, so arbitrary entities are
        safe)."""
        definition = self._definitions[name]
        if callable(definition):
            raise QueryError(
                f"operator {name!r} is defined by a callable, not a query")

        def substitute(match: "re.Match") -> str:
            index = int(match.group(1))
            if not 1 <= index <= len(arguments):
                raise QueryError(
                    f"operator {name!r} references ${index} but got"
                    f" {len(arguments)} argument(s)")
            escaped = str(arguments[index - 1]).replace("\\", "\\\\")
            escaped = escaped.replace('"', '\\"')
            return f'"{escaped}"'

        return _PLACEHOLDER_RE.sub(substitute, definition)

    def invoke(self, name: str, database, *arguments):
        """Run an operator against a database.

        String definitions evaluate as queries (returning the value
        set); callables receive ``(database, *arguments)`` and may
        return anything.
        """
        if name not in self._definitions:
            raise QueryError(f"unknown operator: {name!r}")
        definition = self._definitions[name]
        if callable(definition):
            return definition(database, *arguments)
        return database.query(self.expand(name, arguments))
