"""The §6.1 operators: try, relation, and user-defined operators."""

from .definitions import OperatorRegistry
from .ops import FunctionView, RelationRow, RelationTable, relation, try_

__all__ = ["OperatorRegistry", "FunctionView", "RelationRow",
           "RelationTable", "relation", "try_"]
