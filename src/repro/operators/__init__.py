"""The §6.1 operators: try, relation, and user-defined operators.

``try(e)`` collects every fact mentioning an entity (the paper's
browsing starting point); ``relation(...)`` tabulates a class and its
relationships as a possibly non-1NF table; and the registry lets
users define new operators as named callables over the database
(``db.define`` / ``db.invoke``).

Example::

    from repro import Database

    db = Database()
    db.add("JOHN", "∈", "EMPLOYEE")
    assert [str(f) for f in db.try_("JOHN")] == ["(JOHN, ∈, EMPLOYEE)"]
"""

from .definitions import OperatorRegistry
from .ops import FunctionView, RelationRow, RelationTable, relation, try_

__all__ = ["OperatorRegistry", "FunctionView", "RelationRow",
           "RelationTable", "relation", "try_"]
