"""The §6.1 retrieval operators: ``try``, ``relation``, and friends.

These are conveniences "implemented with the standard query language"
— each operator body below really is the query the paper gives for it,
run through the ordinary evaluator/matcher.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from ..core.entities import MEMBER
from ..core.facts import Fact, Template, Variable
from ..virtual.computed import FactView
from ..browse.render import render_relation_table


def try_(view: FactView, entity: str) -> List[Fact]:
    """``try(e)``: all database facts that include ``e`` (§6.1).

    "With a couple of tries, even users completely unfamiliar with the
    database should be able to pick a starting point for navigation."
    Implemented as the disjunction ``(e,y,z) ∨ (x,e,z) ∨ (x,y,e)``.
    """
    x, y = Variable("x"), Variable("y")
    seen = set()
    results: List[Fact] = []
    for pattern in (Template(entity, x, y), Template(x, entity, y),
                    Template(x, y, entity)):
        for fact in view.match(pattern):
            if fact not in seen:
                seen.add(fact)
                results.append(fact)
    results.sort()
    return results


@dataclass
class RelationRow:
    """One row of a ``relation(...)`` table: the instance entity plus
    one (possibly multi-valued) cell per requested relationship."""

    instance: str
    cells: Tuple[Tuple[str, ...], ...]

    def as_tuple(self) -> Tuple[Union[str, Tuple[str, ...]], ...]:
        return (self.instance,) + self.cells


@dataclass
class RelationTable:
    """The structured view built by ``relation(s, r1 t1, …, rn tn)``.

    "Such relations are not necessarily in first normal form" (§6.1):
    every cell except the first column holds a tuple of entities.
    """

    class_entity: str
    columns: Tuple[Tuple[str, str], ...]  # (relationship, target class)
    rows: List[RelationRow]

    def headers(self) -> List[str]:
        return [self.class_entity] + [
            f"{relationship} {target}" for relationship, target in self.columns
        ]

    def render(self) -> str:
        return render_relation_table(
            self.headers(), [row.as_tuple() for row in self.rows])

    def __len__(self) -> int:
        return len(self.rows)


class FunctionView:
    """A relationship viewed through the functional data model (§6.1:
    "the user may view this information as if it is structured
    according to different data models, such as the relational or the
    functional").

    ``f = FunctionView(view, "EARNS")`` makes ``f("JOHN")`` the tuple
    of John's EARNS-targets in the closure.  Multi-valued results are
    the norm in a loose heap; :meth:`is_single_valued` reports whether
    the relationship currently behaves as a true function.
    """

    def __init__(self, view: FactView, relationship: str):
        self.view = view
        self.relationship = relationship

    def __call__(self, entity: str) -> Tuple[str, ...]:
        """The images of ``entity`` under the relationship, sorted."""
        target = Variable("t")
        return tuple(sorted({
            f.target
            for f in self.view.match(
                Template(entity, self.relationship, target))
        }))

    def inverse(self, value: str) -> Tuple[str, ...]:
        """The pre-images of ``value``, sorted."""
        source = Variable("s")
        return tuple(sorted({
            f.source
            for f in self.view.match(
                Template(source, self.relationship, value))
        }))

    def domain(self) -> List[str]:
        """Every entity with at least one image, sorted."""
        source, target = Variable("s"), Variable("t")
        return sorted({
            f.source
            for f in self.view.match(
                Template(source, self.relationship, target))
        })

    def is_single_valued(self) -> bool:
        """True if no entity currently has two images."""
        return all(len(self(entity)) <= 1 for entity in self.domain())

    def items(self):
        """(entity, images) pairs over the domain."""
        for entity in self.domain():
            yield entity, self(entity)


def relation(view: FactView, class_entity: str,
             *columns: Tuple[str, str]) -> RelationTable:
    """``relation(s, r1 t1, …, rn tn)`` (§6.1).

    Returns a table whose first column holds the instances of
    ``class_entity``; column *i* holds, for each instance ``y``, every
    ``z`` with ``(y, ri, z)`` and ``(z, ∈, ti)`` — the paper's
    implementing query ``(y,∈,s) ∧ (z_i,∈,t_i) ∧ (y,r_i,z_i)``.
    """
    instance_var = Variable("y")
    instances = sorted(
        {f.source for f in view.match(
            Template(instance_var, MEMBER, class_entity))})
    rows: List[RelationRow] = []
    value_var = Variable("z")
    for instance in instances:
        cells: List[Tuple[str, ...]] = []
        for relationship, target_class in columns:
            values = sorted({
                f.target
                for f in view.match(Template(instance, relationship, value_var))
                if any(True for _ in view.match(
                    Template(f.target, MEMBER, target_class)))
            })
            cells.append(tuple(values))
        rows.append(RelationRow(instance=instance, cells=tuple(cells)))
    return RelationTable(class_entity=class_entity,
                         columns=tuple(columns), rows=rows)
