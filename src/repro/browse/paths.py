"""Association paths without materialized composition.

§3.7 observes that the length of a composition chain is "the semantic
distance between these entities", and §4.1 uses ``(JOHN, x, MARY)`` to
ask for "all the different associations between them".  Materializing
every composition fact is expensive (benchmark F1); this module finds
the same associations *algorithmically* — a bounded breadth-first
search over the fact graph — so browsers can ask "how are these two
entities related?" without ever paying for the full composed closure.

A path mirrors the paper's composed-relationship naming::

    JOHN --FAVORITE-MUSIC--> PC#9-WAM --COMPOSED-BY--> MOZART
    ==  FAVORITE-MUSIC.PC#9-WAM.COMPOSED-BY
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from ..core.entities import (
    compose_relationship,
    is_composed,
    is_special_relationship,
)
from ..core.facts import Fact, Template, Variable
from ..virtual.computed import FactView


@dataclass(frozen=True)
class AssociationPath:
    """A chain of facts linking a source entity to a target entity."""

    facts: Tuple[Fact, ...]

    @property
    def source(self) -> str:
        return self.facts[0].source

    @property
    def target(self) -> str:
        return self.facts[-1].target

    @property
    def length(self) -> int:
        """The paper's semantic distance: primitive facts chained."""
        return len(self.facts)

    def relationship(self) -> str:
        """The composed relationship name this path denotes (§3.7)."""
        name = self.facts[0].relationship
        for fact in self.facts[1:]:
            name = compose_relationship(name, fact.source,
                                        fact.relationship)
        return name

    def entities(self) -> Tuple[str, ...]:
        """Source, intermediates, target — in order."""
        return (self.facts[0].source,) + tuple(
            fact.target for fact in self.facts)

    def render(self) -> str:
        parts = [self.facts[0].source]
        for fact in self.facts:
            parts.append(f"--{fact.relationship}--> {fact.target}")
        return " ".join(parts)


def association_paths(view: FactView, source: str, target: str,
                      max_length: int = 3,
                      limit: Optional[int] = None) -> List[AssociationPath]:
    """All simple association paths from ``source`` to ``target``.

    Args:
        view: the closure view to walk (derived facts included;
            special-relationship facts are not traversed, matching
            composition's rule).
        source, target: the two entities to relate.
        max_length: maximum primitive facts per chain — the ``limit(n)``
            analogue, and the semantic-distance cutoff.
        limit: stop after this many paths (None = all).

    Returns:
        Paths sorted by length then lexicographically, so the most
        semantically significant associations come first (§6.1: "as
        the chain of compositions gets longer, the relationship …
        becomes less significant").
    """
    if max_length < 1:
        raise ValueError("max_length must be >= 1")
    results: List[AssociationPath] = []
    # BFS over (entity, path) states; simple paths only.
    queue: deque = deque()
    queue.append((source, ()))
    relationship_var = Variable("__r__")
    target_var = Variable("__t__")
    while queue:
        entity, path = queue.popleft()
        if len(path) >= max_length:
            continue
        visited: Set[str] = {source}
        visited.update(fact.target for fact in path)
        for fact in sorted(view.match(
                Template(entity, relationship_var, target_var))):
            if is_special_relationship(fact.relationship):
                continue
            # Materialized composition facts (when limit(n) is on) are
            # shortcuts over primitive steps; walking them would count
            # the same association twice at inflated length.
            if is_composed(fact.relationship):
                continue
            extended = path + (fact,)
            if fact.target == target:
                results.append(AssociationPath(facts=extended))
                if limit is not None and len(results) >= limit:
                    return _sorted_paths(results)
                continue
            if fact.target in visited or fact.target == source:
                continue
            queue.append((fact.target, extended))
    return _sorted_paths(results)


def _sorted_paths(paths: Sequence[AssociationPath]) -> List[AssociationPath]:
    return sorted(paths, key=lambda p: (p.length, p.facts))


def semantic_distance(view: FactView, source: str, target: str,
                      max_length: int = 5) -> Optional[int]:
    """The length of the shortest association path, or None if the
    entities are not connected within ``max_length`` (§3.7's
    "semantic distance")."""
    paths = association_paths(view, source, target,
                              max_length=max_length, limit=1)
    return paths[0].length if paths else None
