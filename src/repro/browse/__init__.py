"""Browsing: navigation (§4) and probing with automatic retraction (§5)."""

from .navigation import (
    NavigationResult,
    NavigationSession,
    navigate,
    star_template,
)
from .paths import AssociationPath, association_paths, semantic_distance
from .probe import GeneralizationHierarchy
from .render import format_columns, render_navigation, render_relation_table
from .retraction import (
    ConjunctiveQuery,
    ProbeResult,
    RetractedQuery,
    RetractionStep,
    RetractionSuccess,
    Wave,
    probe,
    retraction_set,
)

__all__ = [
    "NavigationResult", "NavigationSession", "navigate", "star_template",
    "AssociationPath", "association_paths", "semantic_distance",
    "GeneralizationHierarchy", "format_columns", "render_navigation",
    "render_relation_table", "ConjunctiveQuery", "ProbeResult",
    "RetractedQuery", "RetractionStep", "RetractionSuccess", "Wave",
    "probe", "retraction_set",
]
