"""Browsing: navigation (§4) and probing with automatic retraction (§5).

The paper's principal retrieval method for an unorganized heap:
*navigation* iterates neighborhood (star-template) queries, rendering
each answer as the grouped two-way table of §4.1; *probing* evaluates
a query and, on failure, automatically retries minimally broader
versions of it — the §5.2 wave process over the generalization
hierarchy — presenting the successes as a menu.

Example::

    from repro import Database

    db = Database()
    db.add("JOHN", "∈", "EMPLOYEE")
    db.add("EMPLOYEE", "EARNS", "SALARY")
    table = db.navigate("(JOHN, *, *)").render()     # §4.1 table
    assert "EMPLOYEE" in table
    outcome = db.probe("(JOHN, OWNS, z)")            # §5.2 retraction
    assert not outcome.succeeded
"""

from .navigation import (
    NavigationResult,
    NavigationSession,
    navigate,
    star_template,
)
from .paths import AssociationPath, association_paths, semantic_distance
from .probe import GeneralizationHierarchy
from .render import format_columns, render_navigation, render_relation_table
from .retraction import (
    ConjunctiveQuery,
    ProbeResult,
    RetractedQuery,
    RetractionStep,
    RetractionSuccess,
    Wave,
    probe,
    retraction_set,
)

__all__ = [
    "NavigationResult", "NavigationSession", "navigate", "star_template",
    "AssociationPath", "association_paths", "semantic_distance",
    "GeneralizationHierarchy", "format_columns", "render_navigation",
    "render_relation_table", "ConjunctiveQuery", "ProbeResult",
    "RetractedQuery", "RetractionStep", "RetractionSuccess", "Wave",
    "probe", "retraction_set",
]
