"""Broadness and minimal generalizations (paper §5.1).

"An entity E' is a minimal generalization of E, if (E,≺,E') and
(E≠E') and there is no third entity X [strictly between].  Notice that
an entity may have several minimal generalizations."

The generalization facts of a database impose a partial hierarchy on
its entities (§2.3).  This module builds that hierarchy from the
closure's explicit ``≺`` facts and answers the two questions probing
needs: *is E' broader than E?* and *what are E's minimal
generalizations?*

Synonyms form mutual-generalization cycles; the hierarchy collapses
each synonym class to one node (replacing an entity by its synonym
yields an equivalent query, which is useless as a retraction), so
minimal generalizations are always *strictly* broader.  Entities with
no generalization at all have ``Δ`` as their single minimal
generalization — exactly the paper's ``(COSTS, ≺, Δ)`` step.

This networkx implementation is the **reference**: the production path
is :class:`repro.browse.lattice.GeneralizationLattice`, an interned,
incrementally maintained equivalent with no third-party dependency.
networkx is now an optional (test) dependency, present only so the
equivalence suites can differentially check the lattice against this
original.
"""

from __future__ import annotations

import difflib
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

try:
    import networkx as nx
except ImportError:  # pragma: no cover - exercised via minimal installs
    nx = None

from ..core.entities import BOTTOM, ISA, TOP
from ..core.facts import Template, Variable
from ..core.store import FactStore


class GeneralizationHierarchy:
    """The ``≺`` partial order of a database, with cover queries."""

    def __init__(self, isa_pairs: Iterable, known_entities: Iterable[str]):
        """Build from explicit (source, target) generalization pairs.

        Args:
            isa_pairs: the ``(s, t)`` of every non-reflexive stored or
                derived ``(s, ≺, t)`` fact.
            known_entities: the active domain; entities outside it are
                "not database entities" and are never generalized (§5.2).
        """
        if nx is None:
            raise ImportError(
                "networkx is required for the reference"
                " GeneralizationHierarchy; the production path is"
                " repro.browse.lattice.GeneralizationLattice")
        self._known: Set[str] = set(known_entities)
        graph = nx.DiGraph()
        graph.add_nodes_from(self._known)
        for source, target in isa_pairs:
            if source != target and TOP not in (source, target) \
                    and BOTTOM not in (source, target):
                graph.add_edge(source, target)
        # Collapse synonym classes (mutual-≺ cycles) so the order is a
        # DAG, then take covers via transitive reduction.
        self._condensed = nx.condensation(graph)
        self._component_of: Dict[str, int] = self._condensed.graph["mapping"]
        if self._condensed.number_of_edges():
            self._covers = nx.transitive_reduction(self._condensed)
        else:
            self._covers = self._condensed.copy()
            self._covers.remove_edges_from(list(self._covers.edges()))
        self._descendants_cache: Dict[int, FrozenSet[int]] = {}

    @classmethod
    def from_store(cls, store: FactStore) -> "GeneralizationHierarchy":
        """Build from a (closed) fact store."""
        pattern = Template(Variable("s"), ISA, Variable("t"))
        pairs = ((f.source, f.target) for f in store.match(pattern))
        return cls(pairs, store.entities())

    # ------------------------------------------------------------------
    def knows(self, entity: str) -> bool:
        """True if ``entity`` is a database entity (or Δ/∇)."""
        return entity in self._known or entity in (TOP, BOTTOM)

    def closest_known(self, name: str, limit: int = 3,
                      cutoff: float = 0.6) -> List[str]:
        """Database entities with names close to ``name``.

        The follow-up to §5.2's "no such database entities": the user
        probably misspelled one — these are the candidates, best first.
        """
        return difflib.get_close_matches(
            name, sorted(self._known), n=limit, cutoff=cutoff)

    def synonym_class(self, entity: str) -> FrozenSet[str]:
        """The entity's synonym class (itself if it has no synonyms)."""
        component = self._component_of.get(entity)
        if component is None:
            return frozenset({entity})
        return frozenset(self._condensed.nodes[component]["members"])

    def minimal_generalizations(self, entity: str) -> FrozenSet[str]:
        """The covers of ``entity`` in the generalization order.

        Returns ``{Δ}`` for maximal database entities, and the empty
        set for ``Δ``/``∇`` themselves and for entities that are not in
        the database (the misspelling case: "it will never be
        replaced", §5.2).
        """
        if entity in (TOP, BOTTOM):
            return frozenset()
        component = self._component_of.get(entity)
        if component is None:
            return frozenset()
        covers: Set[str] = set()
        for successor in self._covers.successors(component):
            covers.update(self._condensed.nodes[successor]["members"])
        if not covers:
            return frozenset({TOP})
        return frozenset(covers)

    def minimal_specializations(self, entity: str) -> FrozenSet[str]:
        """The co-covers of ``entity``: its minimal *specializations*.

        Broadening a query replaces its **source** entity downward
        (§5.2: FRESHMAN instead of STUDENT), because rule (1) derives
        ``(s', r, t)`` from ``(s, r, t)`` for every ``s' ≺ s``.
        Returns ``{∇}`` for minimal database entities, and the empty
        set for ``Δ``/``∇`` and for unknown entities.
        """
        if entity in (TOP, BOTTOM):
            return frozenset()
        component = self._component_of.get(entity)
        if component is None:
            return frozenset()
        co_covers: Set[str] = set()
        for predecessor in self._covers.predecessors(component):
            co_covers.update(self._condensed.nodes[predecessor]["members"])
        if not co_covers:
            return frozenset({BOTTOM})
        return frozenset(co_covers)

    def _strict_ancestors(self, component: int) -> FrozenSet[int]:
        cached = self._descendants_cache.get(component)
        if cached is None:
            cached = frozenset(nx.descendants(self._condensed, component))
            self._descendants_cache[component] = cached
        return cached

    def generalizes(self, broad: str, narrow: str) -> bool:
        """True if ``(narrow, ≺, broad)`` holds in the hierarchy —
        reflexively, through synonyms, or via ``Δ``/``∇``."""
        if broad == TOP or narrow == BOTTOM:
            return True
        if narrow == broad:
            return True
        narrow_component = self._component_of.get(narrow)
        broad_component = self._component_of.get(broad)
        if narrow_component is None or broad_component is None:
            return False
        if narrow_component == broad_component:
            return True
        return broad_component in self._strict_ancestors(narrow_component)

    def strictly_generalizes(self, broad: str, narrow: str) -> bool:
        """True if ``broad`` is strictly above ``narrow`` (synonyms and
        the entity itself excluded)."""
        if broad == narrow:
            return False
        if broad == TOP:
            return narrow != TOP
        if narrow == BOTTOM:
            return broad != BOTTOM
        narrow_component = self._component_of.get(narrow)
        broad_component = self._component_of.get(broad)
        if narrow_component is None or broad_component is None:
            return False
        return (narrow_component != broad_component
                and broad_component in self._strict_ancestors(narrow_component))

    def generalization_chain_depth(self, entity: str) -> int:
        """Length of the longest strict chain from ``entity`` up to a
        maximal entity (0 for maximal entities); used by benchmarks."""
        component = self._component_of.get(entity)
        if component is None:
            return 0
        depth = 0
        frontier = {component}
        while True:
            successors: Set[int] = set()
            for node in frontier:
                successors.update(self._covers.successors(node))
            if not successors:
                return depth
            depth += 1
            frontier = successors
