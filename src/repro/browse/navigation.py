"""Browsing by navigation (paper §4.1).

"The process of navigation is based on template retrieval.  These
primitive queries allow the user to examine the neighborhood of a
particular entity, pick an entity in that neighborhood, retrieve its
own neighborhood, and so on."

A navigation query is a single template, written with ``*`` for "all
independent variable names".  Results are grouped the way the paper's
tables are: one column per relationship, targets (or sources, or
source–target pairs) listed beneath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..core.entities import MEMBER
from ..core.facts import Fact, Template, Variable
from ..obs import tracer as _obs
from ..virtual.computed import FactView
from ..query.parser import parse_template


def _star(index: int) -> Variable:
    return Variable(f"_star{index}")


def star_template(source: Optional[str] = None,
                  relationship: Optional[str] = None,
                  target: Optional[str] = None) -> Template:
    """Build a navigation template; ``None`` positions become stars."""
    components = []
    for index, value in enumerate((source, relationship, target)):
        components.append(_star(index + 1) if value is None else value)
    return Template(*components)


@dataclass
class NavigationResult:
    """The neighborhood matched by one navigation template.

    ``groups`` maps each relationship to the list of entities (or
    entity pairs) it relates, mirroring the paper's column-per-
    relationship tables.  ``facts`` keeps the raw matches for callers
    that want them.
    """

    pattern: Template
    facts: List[Fact]
    groups: "Dict[str, List[Union[str, Tuple[str, str]]]]" = field(
        default_factory=dict)

    #: Which component of each fact the group lists: "target",
    #: "source", "relationship", or "pair".
    grouped_by: str = "target"

    def relationships(self) -> List[str]:
        """Column order: ``∈`` first (as in the paper's tables), then
        the rest alphabetically."""
        keys = sorted(self.groups)
        if MEMBER in self.groups:
            keys.remove(MEMBER)
            keys.insert(0, MEMBER)
        return keys

    def entities(self) -> List[str]:
        """Every entity appearing in the result — the candidates for
        the next navigation step."""
        seen = []
        for fact in self.facts:
            for entity in fact:
                if entity not in seen:
                    seen.append(entity)
        return seen

    def is_empty(self) -> bool:
        return not self.facts

    def render(self) -> str:
        from .render import render_navigation
        return render_navigation(self)


def navigate(view: FactView, pattern: Union[str, Template],
             cache=None, cache_token=None) -> NavigationResult:
    """Evaluate a navigation (star-template) query against a view.

    The template may be given as text (``"(JOHN, *, *)"``) or as a
    :class:`~repro.core.facts.Template`.

    With ``cache`` (an :class:`~repro.core.cache.LRUCache`) and
    ``cache_token`` set, the finished :class:`NavigationResult` is
    memoized under ``("nav", canonical pattern, token)`` — revisiting a
    neighborhood on an unchanged database (the paper's principal
    retrieval pattern, §5) is a dict hit.  Cached results are shared
    objects; callers must treat them as read-only.
    """
    if isinstance(pattern, str):
        pattern = parse_template(pattern)
    if cache is not None:
        key = ("nav", repr(pattern), cache_token)
        hit = cache.get(key)
        if hit is not None:
            return hit
    observing = _obs.ENABLED
    navigate_span = (_obs.TRACER.span("browse.navigate",
                                      pattern=str(pattern))
                     if observing else _obs.NULL_SPAN)
    with navigate_span as span:
        if observing:
            _obs.TRACER.count("browse.navigations")
        facts = sorted(set(view.match(pattern)))
        span.set(facts=len(facts))

    source_free = isinstance(pattern.source, Variable)
    relationship_free = isinstance(pattern.relationship, Variable)
    target_free = isinstance(pattern.target, Variable)

    groups: Dict[str, List[Union[str, Tuple[str, str]]]] = {}
    if relationship_free and source_free and target_free:
        grouped_by = "pair"
        for fact in facts:
            groups.setdefault(fact.relationship, []).append(
                (fact.source, fact.target))
    elif relationship_free and target_free:
        grouped_by = "target"
        for fact in facts:
            groups.setdefault(fact.relationship, []).append(fact.target)
    elif relationship_free and source_free:
        grouped_by = "source"
        for fact in facts:
            groups.setdefault(fact.relationship, []).append(fact.source)
    elif relationship_free:
        # (LEOPOLD, *, MOZART): the associations between two entities.
        grouped_by = "relationship"
        for fact in facts:
            groups.setdefault(fact.relationship, [])
    elif source_free and target_free:
        grouped_by = "pair"
        for fact in facts:
            groups.setdefault(fact.relationship, []).append(
                (fact.source, fact.target))
    elif target_free:
        grouped_by = "target"
        for fact in facts:
            groups.setdefault(fact.relationship, []).append(fact.target)
    elif source_free:
        grouped_by = "source"
        for fact in facts:
            groups.setdefault(fact.relationship, []).append(fact.source)
    else:
        grouped_by = "relationship"
        for fact in facts:
            groups.setdefault(fact.relationship, [])
    result = NavigationResult(pattern=pattern, facts=facts,
                              groups=groups, grouped_by=grouped_by)
    if cache is not None:
        cache.put(key, result)
    return result


class NavigationSession:
    """An interactive navigation: a history of neighborhood queries.

    The paper's example session (§4.1)::

        session.visit("JOHN")          # (JOHN, *, *)
        session.visit("PC#9-WAM")      # (PC#9-WAM, *, *)
        session.between("LEOPOLD", "MOZART")
    """

    def __init__(self, view: FactView, cache=None, cache_token=None):
        # A session outlives configuration changes, so ``cache_token``
        # may be a zero-argument callable re-evaluated per navigation
        # (the Database passes its bound ``_cache_token`` method).
        self.view = view
        self.cache = cache
        self.cache_token = cache_token
        self.history: List[NavigationResult] = []

    @property
    def current(self) -> Optional[NavigationResult]:
        return self.history[-1] if self.history else None

    def _record(self, result: NavigationResult) -> NavigationResult:
        self.history.append(result)
        return result

    def _navigate(self, pattern: Union[str, Template]) -> NavigationResult:
        token = (self.cache_token() if callable(self.cache_token)
                 else self.cache_token)
        return navigate(self.view, pattern, cache=self.cache,
                        cache_token=token)

    def visit(self, entity: str) -> NavigationResult:
        """The outgoing neighborhood ``(entity, *, *)``."""
        return self._record(self._navigate(star_template(source=entity)))

    def incoming(self, entity: str) -> NavigationResult:
        """The incoming neighborhood ``(*, *, entity)``."""
        return self._record(self._navigate(star_template(target=entity)))

    def between(self, source: str, target: str) -> NavigationResult:
        """All associations ``(source, *, target)`` — with composition
        enabled this includes the composed paths (§4.1)."""
        return self._record(
            self._navigate(star_template(source=source, target=target)))

    def query(self, pattern: Union[str, Template]) -> NavigationResult:
        """An arbitrary navigation template."""
        return self._record(self._navigate(pattern))

    def back(self) -> Optional[NavigationResult]:
        """Forget the latest step and return the one before it."""
        if self.history:
            self.history.pop()
        return self.current
