"""Browsing by probing: automatic retraction (paper §5).

"Every query may be regarded as a request to the database to 'zoom in'
on particular data.  The failure of a query can then be attributed to
'overzooming' ... When a query fails we automatically attempt its
retraction set."

The mechanics implemented here, each mapped to its paragraph in §5:

* the **retraction set** of a query — all queries minimally broader
  than it (one entity occurrence replaced by one minimal
  generalization);
* **weak templates** — templates composed entirely of variables and
  ``Δ``/``∇`` are generalized by deleting them altogether;
* the **wave process** — when every query of a retraction set fails,
  each failed query is retracted in turn, one breadth level per wave,
  "until some retrieval is successful (or it is abandoned by the
  user)";
* **critical failures** — a failed query all of whose retractions
  succeed isolates exactly where the database cannot satisfy the user;
* **"no such database entities"** — a failing query with no broader
  queries left names entities the database has never seen.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from ..core import deadline as _deadline
from ..core.entities import BOTTOM, TOP
from ..core.errors import QueryError
from ..core.facts import Template, Variable
from ..obs import metrics as _metrics
from ..obs import tracer as _obs
from ..query.ast import And, Atom, Exists, Formula, Query, exists
from ..query.canonical import canonical_form
from ..query.evaluate import Evaluator
from ..query.parser import parse_query
from ..query.planner import estimate_cost
from .lattice import GeneralizationLattice

#: Safety valve on the wave process: the lattice above a query is
#: finite but can be wide; probing past this many waves almost always
#: means the query has drifted into meaninglessness.
DEFAULT_MAX_WAVES = 25

#: Keep a :func:`last_probe` record even with tracing and metrics off.
#: Set by consumers that want slow-probe autopsies without observing
#: everything (the service's slow-query log).
KEEP_LAST_PROBE = False

#: Approximate process-wide probe totals (exact single-threaded; plain
#: int bumps, so concurrent probes may undercount — benchmarks read
#: these for hit-rate windows, nothing depends on them being exact).
PROBE_COUNTERS = {
    "probes": 0,
    "menu_hits": 0,
    "menu_misses": 0,
}


class _LastProbe(threading.local):
    record: Optional[dict] = None


_LAST_PROBE = _LastProbe()


def last_probe() -> Optional[dict]:
    """The thread's most recent probe autopsy record (query, waves,
    candidates, successes, menu-cache outcome, seconds), recorded when
    tracing/metrics are on or :data:`KEEP_LAST_PROBE` is set."""
    return _LAST_PROBE.record


def clear_last_probe() -> None:
    _LAST_PROBE.record = None


@dataclass(frozen=True)
class ConjunctiveQuery:
    """The query class probing retracts: a conjunction of templates
    with designated output (free) variables."""

    templates: Tuple[Template, ...]
    free: Tuple[Variable, ...]

    @staticmethod
    def from_query(query: Union[Query, str]) -> "ConjunctiveQuery":
        """Extract the conjunctive core of a query.

        Accepts text or a :class:`Query` whose formula is a template,
        a conjunction of templates, or either wrapped in ∃ quantifiers.
        """
        if isinstance(query, str):
            query = parse_query(query)
        formula: Formula = query.formula
        while isinstance(formula, Exists):
            formula = formula.body
        if isinstance(formula, Atom):
            templates: Tuple[Template, ...] = (formula.pattern,)
        elif isinstance(formula, And) and all(
                isinstance(p, Atom) for p in formula.parts):
            templates = tuple(p.pattern for p in formula.parts)
        else:
            raise QueryError(
                "probing retracts conjunctive queries (conjunctions of"
                f" templates, possibly ∃-quantified); got: {formula}")
        return ConjunctiveQuery(templates=templates, free=query.variables)

    def to_query(self) -> Query:
        """Back to a :class:`Query`, ∃-quantifying non-output variables."""
        formula: Formula = And(tuple(Atom(t) for t in self.templates))
        all_vars = set()
        for template in self.templates:
            all_vars.update(template.variable_set())
        inner = sorted(all_vars - set(self.free), key=lambda v: v.name)
        if inner:
            formula = exists(inner, formula)
        return Query.of(formula, self.free)

    def __str__(self) -> str:
        body = " ∧ ".join(repr(t) for t in self.templates)
        if not self.free:
            return body
        names = ", ".join(v.name for v in self.free)
        return f"Q({names}) = {body}"


@dataclass(frozen=True)
class RetractionStep:
    """One generalization applied to a query."""

    kind: str  # "replace" or "delete"
    template_index: int
    position: Optional[str]  # source / relationship / target
    old: Union[Template, str]
    new: Optional[str]

    def describe(self) -> str:
        if self.kind == "delete":
            return f"without {self.old!r}"
        return f"{self.new} instead of {self.old}"


@dataclass(frozen=True)
class RetractedQuery:
    """A query in the retraction lattice, with the steps that led to it."""

    query: ConjunctiveQuery
    path: Tuple[RetractionStep, ...]

    def describe(self) -> str:
        return ", ".join(step.describe() for step in self.path)


def _is_weak(template: Template) -> bool:
    """Weak templates "represent weak restrictions, which frequently
    are meaningless" (§5.2): every component is a variable, Δ, or ∇."""
    return all(
        isinstance(c, Variable) or c in (TOP, BOTTOM) for c in template)


def _replace_position(template: Template, position: int,
                      entity: str) -> Template:
    components = list(template)
    components[position] = entity
    return Template(*components)


#: Relationships whose templates do not broaden by source
#: specialization: rule (1) quantifies over R_i, and no rule derives
#: ``(s', ∈, c)`` (or the like) from ``(s, ∈, c)`` with ``s' ≺ s``.
#: ``≺`` itself *does* specialize soundly (via transitivity), so it is
#: not listed.
_NO_SOURCE_SPECIALIZATION = frozenset({"∈", "≈", "↔", "⊥"})


def _replacements(template: Template, position: int,
                  hierarchy: GeneralizationLattice) -> FrozenSet[str]:
    """The minimal replacements broadening one ground position.

    Source entities are replaced by minimal *specializations* (rule (1)
    gives ``(s,r,t) ⇒ (s',r,t)`` for ``s' ≺ s``); relationship and
    target entities by minimal *generalizations* — exactly the §5.2
    worked example: FRESHMAN instead of STUDENT, LIKE instead of LOVE,
    CHEAP instead of FREE, Δ instead of COSTS.
    """
    component = template[position]
    if position == 0:
        relationship = template.relationship
        if (isinstance(relationship, str)
                and relationship in _NO_SOURCE_SPECIALIZATION):
            return frozenset()
        return hierarchy.minimal_specializations(component)
    return hierarchy.minimal_generalizations(component)


def retraction_set(
        retracted: RetractedQuery,
        hierarchy: GeneralizationLattice) -> List[RetractedQuery]:
    """All queries minimally broader than ``retracted.query`` (§5.1).

    Weak templates are generalized by deletion; other templates by
    replacing one entity occurrence with one minimal replacement in the
    broadening direction of its position (source ↓, relationship ↑,
    target ↑).  Entities unknown to the database are never replaced
    (§5.2).
    """
    query = retracted.query
    results: List[RetractedQuery] = []
    position_names = ("source", "relationship", "target")
    for index, template in enumerate(query.templates):
        if _is_weak(template):
            if len(query.templates) == 1:
                continue  # deleting the last template leaves no query
            remaining = (query.templates[:index]
                         + query.templates[index + 1:])
            remaining_vars: Set[Variable] = set()
            for other in remaining:
                remaining_vars.update(other.variable_set())
            new_free = tuple(v for v in query.free if v in remaining_vars)
            step = RetractionStep(
                kind="delete", template_index=index,
                position=None, old=template, new=None)
            results.append(RetractedQuery(
                query=ConjunctiveQuery(remaining, new_free),
                path=retracted.path + (step,)))
            continue
        for position, component in enumerate(template):
            if isinstance(component, Variable):
                continue
            for replacement in sorted(
                    _replacements(template, position, hierarchy)):
                new_template = _replace_position(
                    template, position, replacement)
                new_templates = (query.templates[:index]
                                 + (new_template,)
                                 + query.templates[index + 1:])
                step = RetractionStep(
                    kind="replace", template_index=index,
                    position=position_names[position],
                    old=component, new=replacement)
                results.append(RetractedQuery(
                    query=ConjunctiveQuery(new_templates, query.free),
                    path=retracted.path + (step,)))
    return results


@dataclass
class RetractionSuccess:
    """A broader query that succeeded, with its value."""

    retracted: RetractedQuery
    value: Set[tuple]

    def describe(self) -> str:
        return self.retracted.describe()


@dataclass
class Wave:
    """One breadth level of the retraction process."""

    number: int
    attempted: List[RetractedQuery]
    successes: List[RetractionSuccess]

    @property
    def all_succeeded(self) -> bool:
        return (bool(self.attempted)
                and len(self.successes) == len(self.attempted))


@dataclass
class ProbeResult:
    """Outcome of probing a query (§5.2)."""

    original: ConjunctiveQuery
    succeeded: bool
    value: Set[tuple] = field(default_factory=set)
    waves: List[Wave] = field(default_factory=list)
    exhausted: bool = False
    unknown_entities: Tuple[str, ...] = ()
    #: unknown entity -> close database-entity names ("did you mean").
    spelling_suggestions: Dict[str, Tuple[str, ...]] = field(
        default_factory=dict)

    @property
    def successes(self) -> List[RetractionSuccess]:
        """The successes of the terminating wave (empty if none)."""
        if not self.waves:
            return []
        return self.waves[-1].successes

    @property
    def critical(self) -> bool:
        """True when the original query failed but every query in its
        retraction set succeeded — the paper's "critical point", where
        each condition alone is satisfiable but their conjunction is
        not."""
        return (not self.succeeded and bool(self.waves)
                and self.waves[0].all_succeeded)

    def select(self, choice: int) -> Set[tuple]:
        """The value of menu entry ``choice`` (1-based, as displayed)."""
        return self.successes[choice - 1].value

    def menu(self) -> str:
        """The paper's retraction menu (§5.2)."""
        if self.succeeded:
            return "Query succeeded."
        lines = ["Query failed. Retrying", ""]
        if self.successes:
            for number, success in enumerate(self.successes, start=1):
                lines.append(f"{number}. Success with {success.describe()}")
            lines.append("")
            lines.append("You may select")
        elif self.unknown_entities:
            lines.append("No such database entities: "
                         + ", ".join(self.unknown_entities))
            for unknown in self.unknown_entities:
                close = self.spelling_suggestions.get(unknown)
                if close:
                    lines.append(
                        f"  (did you mean {', '.join(close)}?)")
        else:
            lines.append("No broader query succeeds.")
        return "\n".join(lines)


def probe(evaluator: Evaluator, query: Union[Query, str, ConjunctiveQuery],
          hierarchy: GeneralizationLattice,
          max_waves: int = DEFAULT_MAX_WAVES, *,
          cache=None, cache_token=None) -> ProbeResult:
    """Evaluate a query; on failure, run the automatic retraction
    process until some retrieval is successful or the lattice is
    exhausted (§5.2).

    When ``cache`` is given, completed retraction menus are memoized in
    it under ``("probe", canonical form, max_waves, cache_token)`` —
    the same versioned-token scheme query results use, so menus are
    dropped naturally when the store version moves.  Cached results are
    shared objects: treat them as read-only.
    """
    if not isinstance(query, ConjunctiveQuery):
        query = ConjunctiveQuery.from_query(query)

    started = time.perf_counter()
    PROBE_COUNTERS["probes"] += 1
    observing = _obs.ENABLED
    metering = _metrics.ENABLED
    if metering:
        _metrics.METRICS.count("probe.requests")
    probe_span = (_obs.TRACER.span("browse.probe", query=str(query))
                  if observing else _obs.NULL_SPAN)
    with probe_span as span:
        if observing:
            _obs.TRACER.count("browse.probes")
        cached = True

        def compute() -> ProbeResult:
            # Runs only when this caller is the single-flight leader;
            # coalesced followers stay on the "cached" accounting path.
            nonlocal cached
            cached = False
            if cache is not None:
                PROBE_COUNTERS["menu_misses"] += 1
                if metering:
                    _metrics.METRICS.count("probe.menu_cache.misses")
            return _probe_inner(evaluator, query, hierarchy, max_waves)

        if cache is not None:
            menu_key = ("probe",
                        canonical_form(query.templates, query.free),
                        max_waves, cache_token)
            result = cache.get_or_compute(menu_key, compute)
            if cached:
                PROBE_COUNTERS["menu_hits"] += 1
                if metering:
                    _metrics.METRICS.count("probe.menu_cache.hits")
        else:
            result = compute()
        span.set(succeeded=result.succeeded, waves=len(result.waves))
        # Counters are derived from the result (cached or fresh) so the
        # observed wave/retraction totals per probe stay identical
        # whether or not the menu cache intervened.
        if observing and result.waves:
            _obs.TRACER.count("browse.probe.waves", len(result.waves))
            _obs.TRACER.count(
                "browse.probe.retractions",
                sum(len(wave.attempted) for wave in result.waves))
            _obs.TRACER.count(
                "browse.probe.successes",
                sum(len(wave.successes) for wave in result.waves))
        if metering and result.waves:
            _metrics.METRICS.count("probe.waves", len(result.waves))
            _metrics.METRICS.count(
                "probe.retractions",
                sum(len(wave.attempted) for wave in result.waves))
        if observing or metering or KEEP_LAST_PROBE:
            _LAST_PROBE.record = {
                "query": str(query),
                "succeeded": result.succeeded,
                "waves": len(result.waves),
                "attempted": sum(len(w.attempted) for w in result.waves),
                "successes": sum(len(w.successes) for w in result.waves),
                "cached": cached,
                "seconds": time.perf_counter() - started,
            }
    return result


def _probe_inner(evaluator: Evaluator, query: ConjunctiveQuery,
                 hierarchy: GeneralizationLattice,
                 max_waves: int) -> ProbeResult:
    """Set-at-a-time wave expansion.

    Each wave is generated whole, deduped against every earlier wave by
    canonical form, and evaluated cheapest-candidate-first by planner
    selectivity estimate.  Ordering cannot change the outcome — every
    candidate in a wave is always evaluated, and successes/failures are
    recorded in generation order — it just surfaces the first success
    sooner for interactive abandonment via deadline checkpoints.
    """
    value = evaluator.evaluate(query.to_query())
    if value:
        return ProbeResult(original=query, succeeded=True, value=value)

    result = ProbeResult(original=query, succeeded=False)
    seen = {canonical_form(query.templates, query.free)}
    frontier = [RetractedQuery(query=query, path=())]
    wave_number = 0
    view = getattr(evaluator, "view", None)
    while frontier and wave_number < max_waves:
        wave_number += 1
        attempted: List[RetractedQuery] = []
        for failed in frontier:
            for candidate in retraction_set(failed, hierarchy):
                key = canonical_form(candidate.query.templates,
                                     candidate.query.free)
                if key not in seen:
                    seen.add(key)
                    attempted.append(candidate)
        if not attempted:
            result.exhausted = True
            result.unknown_entities = _unknown_entities(query, hierarchy)
            result.spelling_suggestions = {
                unknown: tuple(hierarchy.closest_known(unknown))
                for unknown in result.unknown_entities
                if hierarchy.closest_known(unknown)
            }
            break
        values: List[Optional[Set[tuple]]] = [None] * len(attempted)
        for index in _evaluation_order(attempted, view):
            if _deadline.ACTIVE:
                _deadline.check()
            values[index] = evaluator.evaluate(
                attempted[index].query.to_query())
        successes: List[RetractionSuccess] = []
        failures: List[RetractedQuery] = []
        for candidate, candidate_value in zip(attempted, values):
            if candidate_value:
                successes.append(RetractionSuccess(
                    retracted=candidate, value=candidate_value))
            else:
                failures.append(candidate)
        result.waves.append(Wave(number=wave_number, attempted=attempted,
                                 successes=successes))
        if successes:
            return result
        frontier = failures
    if frontier and wave_number >= max_waves:
        result.exhausted = False  # abandoned, not exhausted
    return result


def _evaluation_order(attempted: Sequence[RetractedQuery],
                      view) -> Sequence[int]:
    """Candidate indices cheapest-first by planner selectivity.

    A candidate's cost is its most selective conjunct's estimated size
    (the planner would bind it first).  Falls back to generation order
    when the evaluator has no fact view to estimate against.
    """
    if view is None or len(attempted) <= 1:
        return range(len(attempted))
    ranked = []
    for index, candidate in enumerate(attempted):
        cost = min(
            estimate_cost(Atom(template), set(), view)
            for template in candidate.query.templates)
        ranked.append((cost, index))
    ranked.sort()
    return [index for _, index in ranked]


def reference_probe(evaluator: Evaluator,
                    query: Union[Query, str, ConjunctiveQuery],
                    hierarchy,
                    max_waves: int = DEFAULT_MAX_WAVES) -> ProbeResult:
    """The original candidate-at-a-time wave process, kept verbatim as
    the oracle for the probe-equivalence suite.  No menu cache, no
    selectivity ordering, no deadline checkpoints."""
    if not isinstance(query, ConjunctiveQuery):
        query = ConjunctiveQuery.from_query(query)
    return _reference_probe_inner(evaluator, query, hierarchy, max_waves)


def _reference_probe_inner(evaluator: Evaluator, query: ConjunctiveQuery,
                           hierarchy, max_waves: int) -> ProbeResult:
    value = evaluator.evaluate(query.to_query())
    if value:
        return ProbeResult(original=query, succeeded=True, value=value)

    result = ProbeResult(original=query, succeeded=False)
    seen = {canonical_form(query.templates, query.free)}
    frontier = [RetractedQuery(query=query, path=())]
    wave_number = 0
    while frontier and wave_number < max_waves:
        wave_number += 1
        attempted: List[RetractedQuery] = []
        for failed in frontier:
            for candidate in retraction_set(failed, hierarchy):
                key = canonical_form(candidate.query.templates,
                                     candidate.query.free)
                if key not in seen:
                    seen.add(key)
                    attempted.append(candidate)
        if not attempted:
            result.exhausted = True
            result.unknown_entities = _unknown_entities(query, hierarchy)
            result.spelling_suggestions = {
                unknown: tuple(hierarchy.closest_known(unknown))
                for unknown in result.unknown_entities
                if hierarchy.closest_known(unknown)
            }
            break
        successes: List[RetractionSuccess] = []
        failures: List[RetractedQuery] = []
        for candidate in attempted:
            candidate_value = evaluator.evaluate(candidate.query.to_query())
            if candidate_value:
                successes.append(RetractionSuccess(
                    retracted=candidate, value=candidate_value))
            else:
                failures.append(candidate)
        result.waves.append(Wave(number=wave_number, attempted=attempted,
                                 successes=successes))
        if successes:
            return result
        frontier = failures
    if frontier and wave_number >= max_waves:
        result.exhausted = False  # abandoned, not exhausted
    return result


def _unknown_entities(query: ConjunctiveQuery,
                      hierarchy: GeneralizationLattice) -> Tuple[str, ...]:
    """Entities of the original query the database has never seen —
    the diagnosis behind "no such database entities" (§5.2)."""
    unknown: List[str] = []
    for template in query.templates:
        for component in template:
            if isinstance(component, Variable):
                continue
            if not hierarchy.knows(component) and component not in unknown:
                unknown.append(component)
    return tuple(unknown)
