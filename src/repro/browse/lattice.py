"""The materialized generalization lattice (paper §5.1, at scale).

:class:`~repro.browse.probe.GeneralizationHierarchy` answers the two
questions probing needs — *is E' broader than E?* and *what are E's
minimal generalizations?* — by building a networkx digraph, condensing
it, and transitively reducing it **from scratch on every mutation**.
That is the right reference semantics and the wrong serving shape: a
browsing session issues thousands of broadness probes against a
hierarchy that almost never changes.

:class:`GeneralizationLattice` is the serving implementation of the
same contract:

* **Interned nodes** — entities appearing in ``≺`` facts are interned
  to dense integer ids once; everything below works on ints.
* **Synonym condensation** — mutual-``≺`` cycles (synonym classes,
  §2.3) are collapsed by an iterative Tarjan SCC pass whose component
  numbering is reverse-topological, so reachability closures build in
  one sweep.
* **Bitmask reachability** — each component keeps its full up-set and
  down-set as a Python arbitrary-precision int; *broader-than* is one
  shift-and-mask, O(1).
* **Cover edges** — the transitive reduction is derived per component
  from the successor up-masks; *minimal generalizations of E* is
  O(covers).
* **Incremental patching** — new ``≺`` pairs are folded in place: an
  already-implied edge is a no-op, an acyclic edge updates the masks
  of the affected up/down cones and recomputes only their cover lists,
  and only a cycle-creating edge (a new synonym merge) triggers a full
  structural rebuild.  Deletions are handled by the owner
  (:class:`~repro.db.Database`) dropping the lattice.
* **Store-bound views** — the structure is shared; ``knows`` /
  ``closest_known`` delegate to an attached live store, so pure domain
  growth (new entities, no new ``≺`` facts) costs nothing and the
  lattice survives :meth:`~repro.db.Database.compact_store`, which
  changes the representation of the store but not its facts.

The public API is a superset of the reference hierarchy's, and the
randomized differential suite (``tests/test_lattice.py``) holds the two
implementations to identical answers on every method.
"""

from __future__ import annotations

import difflib
import threading
from typing import (
    Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set,
    Tuple,
)

from ..core.entities import BOTTOM, ISA, TOP
from ..core.facts import Template, Variable
from ..core.store import FactStore
from ..obs import metrics as _metrics
from ..obs import tracer as _obs

#: The template the lattice ingests from a closed store.
ISA_PATTERN = Template(Variable("s"), ISA, Variable("t"))


def _bits(mask: int) -> Iterator[int]:
    """The set bit positions of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def _tarjan(n: int, out: Sequence[Sequence[int]]) -> Tuple[List[int], int]:
    """Iterative Tarjan SCC: ``(component_of, component_count)``.

    Components are numbered in pop order, which for Tarjan is reverse
    topological: every successor component of ``c`` has a smaller id
    than ``c``.  The mask builders below rely on exactly that.
    """
    comp_of = [-1] * n
    index_of = [-1] * n
    low = [0] * n
    on_stack = bytearray(n)
    stack: List[int] = []
    next_index = 0
    next_comp = 0
    for root in range(n):
        if index_of[root] != -1:
            continue
        work: List[List[int]] = [[root, 0]]
        while work:
            frame = work[-1]
            v = frame[0]
            if frame[1] == 0:
                index_of[v] = low[v] = next_index
                next_index += 1
                stack.append(v)
                on_stack[v] = 1
            descended = False
            neighbors = out[v]
            while frame[1] < len(neighbors):
                w = neighbors[frame[1]]
                frame[1] += 1
                if index_of[w] == -1:
                    work.append([w, 0])
                    descended = True
                    break
                if on_stack[w] and low[w] < low[v]:
                    low[v] = low[w]
            if descended:
                continue
            if low[v] == index_of[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = 0
                    comp_of[w] = next_comp
                    if w == v:
                        break
                next_comp += 1
            work.pop()
            if work and low[v] < low[work[-1][0]]:
                low[work[-1][0]] = low[v]
    return comp_of, next_comp


def _count(name: str, value: int = 1) -> None:
    if _obs.ENABLED:
        _obs.TRACER.count(name, value)
    if _metrics.ENABLED:
        _metrics.METRICS.count(name, value)


class _LatticeCore:
    """The shared mutable structure behind every lattice view.

    All state is per-*component* (synonym class): raw successor /
    predecessor sets, up/down reachability masks, and cover frozensets.
    One core can back many :class:`GeneralizationLattice` views bound
    to different stores; patches mutate it in place so every view sees
    them (copy-on-patch for snapshot isolation is the owner's job, via
    :meth:`copy`).
    """

    __slots__ = ("id_of", "names", "pairs", "edges", "comp_of",
                 "members", "comp_out", "comp_in", "up", "down",
                 "covers_up", "covers_down", "builds", "patches",
                 "merge_rebuilds", "patched_edges", "lock")

    def __init__(self) -> None:
        self.id_of: Dict[str, int] = {}
        self.names: List[str] = []
        #: every (source, target) pair ever ingested, including the
        #: structurally filtered ones — the dedup set incremental
        #: feeding diffs against.
        self.pairs: Set[Tuple[str, str]] = set()
        #: the structural edges (filtered, as id pairs); the rebuild
        #: source of truth.
        self.edges: Set[Tuple[int, int]] = set()
        self.comp_of: List[int] = []
        self.members: List[List[int]] = []
        self.comp_out: List[Set[int]] = []
        self.comp_in: List[Set[int]] = []
        self.up: List[int] = []
        self.down: List[int] = []
        self.covers_up: List[FrozenSet[int]] = []
        self.covers_down: List[FrozenSet[int]] = []
        self.builds = 0
        self.patches = 0
        self.merge_rebuilds = 0
        self.patched_edges = 0
        # Guards structural mutation (patch/rebuild).  Reads are
        # lock-free: readers of a *published snapshot* always hold a
        # core that is no longer patched in place (copy-on-patch).
        self.lock = threading.Lock()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, isa_pairs: Iterable) -> List[Tuple[int, int]]:
        """Record raw pairs; returns the structurally *new* id edges.

        Filtering matches the reference hierarchy exactly: reflexive
        pairs and pairs touching ``Δ``/``∇`` impose no order (§5.1 —
        ``Δ`` is implicitly above everything already).
        """
        new_edges: List[Tuple[int, int]] = []
        pairs = self.pairs
        edges = self.edges
        id_of = self.id_of
        names = self.names
        for source, target in isa_pairs:
            pair = (source, target)
            if pair in pairs:
                continue
            pairs.add(pair)
            if source == target or TOP in pair or BOTTOM in pair:
                continue
            u = id_of.get(source)
            if u is None:
                u = id_of[source] = len(names)
                names.append(source)
            v = id_of.get(target)
            if v is None:
                v = id_of[target] = len(names)
                names.append(target)
            edge = (u, v)
            if edge not in edges:
                edges.add(edge)
                new_edges.append(edge)
        return new_edges

    # ------------------------------------------------------------------
    # Full build
    # ------------------------------------------------------------------
    def build(self) -> None:
        """(Re)derive all per-component structure from ``edges``."""
        n = len(self.names)
        out: List[List[int]] = [[] for _ in range(n)]
        for u, v in self.edges:
            out[u].append(v)
        comp_of, count = _tarjan(n, out)
        members: List[List[int]] = [[] for _ in range(count)]
        for node, comp in enumerate(comp_of):
            members[comp].append(node)
        comp_out: List[Set[int]] = [set() for _ in range(count)]
        comp_in: List[Set[int]] = [set() for _ in range(count)]
        for u, v in self.edges:
            cu, cv = comp_of[u], comp_of[v]
            if cu != cv:
                comp_out[cu].add(cv)
                comp_in[cv].add(cu)
        # Successor components have smaller ids (Tarjan pop order), so
        # one ascending sweep closes the up-sets and one descending
        # sweep the down-sets.
        up = [0] * count
        for comp in range(count):
            mask = 1 << comp
            for succ in comp_out[comp]:
                mask |= up[succ]
            up[comp] = mask
        down = [0] * count
        for comp in range(count - 1, -1, -1):
            mask = 1 << comp
            for pred in comp_in[comp]:
                mask |= down[pred]
            down[comp] = mask
        self.comp_of = comp_of
        self.members = members
        self.comp_out = comp_out
        self.comp_in = comp_in
        self.up = up
        self.down = down
        self.covers_up = [self._reduce(comp_out[c], up) for c in range(count)]
        self.covers_down = [self._reduce(comp_in[c], down)
                            for c in range(count)]
        self.builds += 1
        _count("lattice.builds")

    @staticmethod
    def _reduce(neighbors: Set[int], masks: List[int]) -> FrozenSet[int]:
        """Transitive reduction of one component's raw neighbor set: a
        neighbor is redundant when another neighbor already reaches it."""
        if len(neighbors) <= 1:
            return frozenset(neighbors)
        redundant = 0
        for n in neighbors:
            redundant |= masks[n] & ~(1 << n)
        return frozenset(n for n in neighbors if not (redundant >> n) & 1)

    # ------------------------------------------------------------------
    # Incremental patching
    # ------------------------------------------------------------------
    def apply(self, new_edges: List[Tuple[int, int]]) -> str:
        """Fold structurally new edges in; returns ``"patched"`` or
        ``"rebuilt"`` (a cycle-creating edge merged synonym classes).

        Must be called with ``lock`` held.  The three cases:

        1. **implied** — the target component is already in the source
           component's up-set: record the raw edge; reachability and
           covers are provably unchanged (the pre-existing witness path
           runs through some successor whose up-set already contains
           both the new successor and everything above it).
        2. **acyclic** — or the masks of the source's down-cone and the
           target's up-cone, then recompute covers only for components
           whose successor (resp. predecessor) masks moved.
        3. **cycle** — the reverse direction is already reachable, so
           the edge merges components; renumbering is global, rebuild.
        """
        for index, (u, v) in enumerate(new_edges):
            # New nodes appended by ingest() since the last build get
            # fresh singleton components on demand.
            self._ensure_components()
            comp_of = self.comp_of
            cu, cv = comp_of[u], comp_of[v]
            if cu == cv:
                continue                      # inside one synonym class
            out_cu = self.comp_out[cu]
            if cv in out_cu:
                continue                      # raw edge already present
            up, down = self.up, self.down
            if (up[cu] >> cv) & 1:            # case 1: implied
                out_cu.add(cv)
                self.comp_in[cv].add(cu)
                continue
            if (down[cu] >> cv) & 1:          # case 3: synonym merge
                self.build()
                self.merge_rebuilds += 1
                self.patched_edges += len(new_edges) - index
                _count("lattice.merge_rebuilds")
                return "rebuilt"
            # Case 2: genuinely new ancestry.
            out_cu.add(cv)
            self.comp_in[cv].add(cu)
            down_cone = down[cu]              # cu and everything below
            up_cone = up[cv]                  # cv and everything above
            for d in _bits(down_cone):
                up[d] |= up_cone
            for a in _bits(up_cone):
                down[a] |= down_cone
            # covers_up of x depends on (successors of x, up-masks of
            # those successors): recompute where either input moved.
            touched_up = {cu}
            comp_in = self.comp_in
            for d in _bits(down_cone):
                touched_up.update(comp_in[d])
            covers_up = self.covers_up
            comp_out = self.comp_out
            for c in touched_up:
                covers_up[c] = self._reduce(comp_out[c], up)
            touched_down = {cv}
            for a in _bits(up_cone):
                touched_down.update(comp_out[a])
            covers_down = self.covers_down
            for c in touched_down:
                covers_down[c] = self._reduce(comp_in[c], down)
            self.patched_edges += 1
        self.patches += 1
        _count("lattice.patches")
        _count("lattice.patch_edges", max(len(new_edges), 1))
        return "patched"

    def _ensure_components(self) -> None:
        """Singleton components for nodes interned after the last
        build/patch."""
        comp_of = self.comp_of
        while len(comp_of) < len(self.names):
            comp = len(self.members)
            comp_of.append(comp)
            self.members.append([len(comp_of) - 1])
            self.comp_out.append(set())
            self.comp_in.append(set())
            self.up.append(1 << comp)
            self.down.append(1 << comp)
            self.covers_up.append(frozenset())
            self.covers_down.append(frozenset())

    # ------------------------------------------------------------------
    def copy(self) -> "_LatticeCore":
        """An independent structural copy (copy-on-patch for shared
        snapshot lattices)."""
        clone = _LatticeCore.__new__(_LatticeCore)
        clone.id_of = dict(self.id_of)
        clone.names = list(self.names)
        clone.pairs = set(self.pairs)
        clone.edges = set(self.edges)
        clone.comp_of = list(self.comp_of)
        clone.members = [list(m) for m in self.members]
        clone.comp_out = [set(s) for s in self.comp_out]
        clone.comp_in = [set(s) for s in self.comp_in]
        clone.up = list(self.up)
        clone.down = list(self.down)
        clone.covers_up = list(self.covers_up)
        clone.covers_down = list(self.covers_down)
        clone.builds = self.builds
        clone.patches = self.patches
        clone.merge_rebuilds = self.merge_rebuilds
        clone.patched_edges = self.patched_edges
        clone.lock = threading.Lock()
        return clone

    def stats(self) -> dict:
        return {
            "entities": len(self.names),
            "components": len(self.members),
            "edges": len(self.edges),
            "cover_edges": sum(len(c) for c in self.covers_up),
            "builds": self.builds,
            "patches": self.patches,
            "merge_rebuilds": self.merge_rebuilds,
            "patched_edges": self.patched_edges,
        }


class GeneralizationLattice:
    """The ``≺`` partial order of a database — drop-in for
    :class:`~repro.browse.probe.GeneralizationHierarchy`, built for
    repeated probing.

    A lattice is a *view*: shared immutable-between-patches structure
    (:class:`_LatticeCore`) plus a knows-source — either a live store
    (:meth:`from_store` / :meth:`with_store`) or a frozen entity set
    (direct construction, mirroring the reference signature).
    """

    __slots__ = ("_core", "_store", "_known")

    def __init__(self, isa_pairs: Iterable = (),
                 known_entities: Optional[Iterable[str]] = None, *,
                 store: Optional[FactStore] = None,
                 core: Optional[_LatticeCore] = None):
        if core is None:
            core = _LatticeCore()
            core.ingest(isa_pairs)
            core.build()
        self._core = core
        self._store = store
        self._known: FrozenSet[str] = (
            frozenset(known_entities) if known_entities is not None
            else frozenset())

    @classmethod
    def from_store(cls, store: FactStore) -> "GeneralizationLattice":
        """Build from a (closed) fact store, staying bound to it for
        ``knows`` / ``closest_known``."""
        pairs = ((f.source, f.target) for f in store.match(ISA_PATTERN))
        return cls(pairs, store=store)

    # ------------------------------------------------------------------
    # View plumbing (the owner database's lifecycle hooks)
    # ------------------------------------------------------------------
    def with_store(self, store: FactStore) -> "GeneralizationLattice":
        """A view over the same structure bound to ``store`` — O(1);
        how the lattice survives closure rebuilds and
        ``compact_store()``."""
        if store is self._store:
            return self
        view = GeneralizationLattice.__new__(GeneralizationLattice)
        view._core = self._core
        view._store = store
        view._known = self._known
        return view

    def structural_copy(self) -> "GeneralizationLattice":
        """An independent copy of the structure (same binding) — the
        copy-on-patch step when the structure is shared with published
        snapshots."""
        view = GeneralizationLattice.__new__(GeneralizationLattice)
        view._core = self._core.copy()
        view._store = self._store
        view._known = self._known
        return view

    def shares_core(self, other: "GeneralizationLattice") -> bool:
        return self._core is other._core

    @property
    def store(self) -> Optional[FactStore]:
        return self._store

    def add_isa_pairs(self, isa_pairs: Iterable) -> str:
        """Fold new ``≺`` pairs in incrementally.

        Pairs already ingested are skipped, so the caller may pass the
        store's full current ``≺`` fact set; returns ``"noop"``,
        ``"patched"``, or ``"rebuilt"``.
        """
        core = self._core
        with core.lock:
            new_edges = core.ingest(isa_pairs)
            if not new_edges:
                return "noop"
            return core.apply(new_edges)

    def stats(self) -> dict:
        return self._core.stats()

    # ------------------------------------------------------------------
    # The reference-hierarchy contract (§5.1)
    # ------------------------------------------------------------------
    def knows(self, entity: str) -> bool:
        """True if ``entity`` is a database entity (or Δ/∇)."""
        if self._store is not None:
            return self._store.has_entity(entity) \
                or entity in (TOP, BOTTOM)
        return entity in self._known or entity in (TOP, BOTTOM)

    def closest_known(self, name: str, limit: int = 3,
                      cutoff: float = 0.6) -> List[str]:
        """Database entities with names close to ``name`` (the §5.2
        misspelling follow-up), best first."""
        known = (self._store.entities() if self._store is not None
                 else self._known)
        return difflib.get_close_matches(
            name, sorted(known), n=limit, cutoff=cutoff)

    def _comp(self, entity: str) -> Optional[int]:
        node = self._core.id_of.get(entity)
        if node is None:
            return None
        return self._core.comp_of[node]

    def _members(self, comps: Iterable[int]) -> FrozenSet[str]:
        core = self._core
        names = core.names
        members = core.members
        out: Set[str] = set()
        for comp in comps:
            out.update(names[node] for node in members[comp])
        return frozenset(out)

    def synonym_class(self, entity: str) -> FrozenSet[str]:
        """The entity's synonym class (itself if it has no synonyms)."""
        comp = self._comp(entity)
        if comp is None:
            return frozenset({entity})
        return self._members((comp,))

    def minimal_generalizations(self, entity: str) -> FrozenSet[str]:
        """The covers of ``entity``: ``{Δ}`` for maximal database
        entities, the empty set for ``Δ``/``∇`` and unknown entities
        ("it will never be replaced", §5.2)."""
        if entity in (TOP, BOTTOM):
            return frozenset()
        comp = self._comp(entity)
        if comp is None:
            # Known entities outside the order are maximal; unknown
            # ones are not database entities at all.
            return frozenset({TOP}) if self.knows(entity) else frozenset()
        covers = self._core.covers_up[comp]
        if not covers:
            return frozenset({TOP})
        return self._members(covers)

    def minimal_specializations(self, entity: str) -> FrozenSet[str]:
        """The co-covers of ``entity`` — ``{∇}`` for minimal database
        entities, empty for ``Δ``/``∇`` and unknown entities."""
        if entity in (TOP, BOTTOM):
            return frozenset()
        comp = self._comp(entity)
        if comp is None:
            return frozenset({BOTTOM}) if self.knows(entity) \
                else frozenset()
        co_covers = self._core.covers_down[comp]
        if not co_covers:
            return frozenset({BOTTOM})
        return self._members(co_covers)

    def generalizes(self, broad: str, narrow: str) -> bool:
        """True if ``(narrow, ≺, broad)`` holds — reflexively, through
        synonyms, or via ``Δ``/``∇``.  One bit test."""
        if broad == TOP or narrow == BOTTOM:
            return True
        if narrow == broad:
            return True
        narrow_comp = self._comp(narrow)
        broad_comp = self._comp(broad)
        if narrow_comp is None or broad_comp is None:
            return False
        return bool((self._core.up[narrow_comp] >> broad_comp) & 1)

    def strictly_generalizes(self, broad: str, narrow: str) -> bool:
        """True if ``broad`` is strictly above ``narrow`` (synonyms and
        the entity itself excluded)."""
        if broad == narrow:
            return False
        if broad == TOP:
            return narrow != TOP
        if narrow == BOTTOM:
            return broad != BOTTOM
        narrow_comp = self._comp(narrow)
        broad_comp = self._comp(broad)
        if narrow_comp is None or broad_comp is None:
            return False
        return narrow_comp != broad_comp and bool(
            (self._core.up[narrow_comp] >> broad_comp) & 1)

    def generalization_chain_depth(self, entity: str) -> int:
        """Length of the longest strict chain from ``entity`` up to a
        maximal entity (0 for maximal entities); used by benchmarks."""
        comp = self._comp(entity)
        if comp is None:
            return 0
        covers_up = self._core.covers_up
        depth = 0
        frontier = {comp}
        while True:
            successors: Set[int] = set()
            for node in frontier:
                successors.update(covers_up[node])
            if not successors:
                return depth
            depth += 1
            frontier = successors
