"""Text rendering of browsing results, in the paper's table style.

The paper displays a navigation answer as a table headed by the
template, with one column per relationship and the related entities
listed beneath (§4.1).  These renderers reproduce that layout with
plain monospaced text.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from ..core.facts import Template, Variable

_COLUMN_GAP = 2
_MIN_WIDTH = 3


def _template_title(pattern: Template) -> str:
    parts = []
    for component in pattern:
        if isinstance(component, Variable):
            parts.append("*" if component.name.startswith("_star")
                         else f"?{component.name}")
        else:
            parts.append(component)
    return "(" + ", ".join(parts) + ")"


def format_columns(title: str, headers: Sequence[str],
                   columns: Sequence[Sequence[str]]) -> str:
    """A column-per-header table, values listed beneath each header."""
    widths = []
    for header, column in zip(headers, columns):
        cells = [header] + list(column)
        widths.append(max([_MIN_WIDTH] + [len(c) for c in cells]))
    depth = max([0] + [len(c) for c in columns])
    gap = " " * _COLUMN_GAP
    lines = [title]
    lines.append(gap.join(
        header.ljust(width) for header, width in zip(headers, widths)))
    lines.append(gap.join("-" * width for width in widths))
    for row in range(depth):
        cells = []
        for column, width in zip(columns, widths):
            cell = column[row] if row < len(column) else ""
            cells.append(cell.ljust(width))
        lines.append(gap.join(cells).rstrip())
    return "\n".join(line.rstrip() for line in lines)


def render_navigation(result) -> str:
    """Render a :class:`~repro.browse.navigation.NavigationResult`."""
    title = _template_title(result.pattern)
    if result.is_empty():
        return f"{title}\n(no facts)"
    headers = result.relationships()
    columns: List[List[str]] = []
    for relationship in headers:
        entries = result.groups[relationship]
        cells: List[str] = []
        for entry in entries:
            if isinstance(entry, tuple):
                cells.append(" -> ".join(entry))
            else:
                cells.append(entry)
        columns.append(cells)
    return format_columns(title, headers, columns)


def render_relation_table(header_cells: Sequence[str],
                          rows: Sequence[Sequence[Union[str, Tuple[str, ...]]]]) -> str:
    """Render the ``relation(...)`` operator's (possibly non-1NF) table
    (§6.1): multi-valued cells are comma-joined within one row."""
    def cell_text(cell) -> str:
        if isinstance(cell, tuple):
            return ", ".join(cell) if cell else "-"
        return cell

    table_rows = [[cell_text(cell) for cell in row] for row in rows]
    widths = [
        max([len(header)] + [len(row[i]) for row in table_rows] + [_MIN_WIDTH])
        for i, header in enumerate(header_cells)
    ]
    gap = " " * _COLUMN_GAP
    lines = [gap.join(h.ljust(w) for h, w in zip(header_cells, widths))]
    lines.append(gap.join("-" * w for w in widths))
    for row in table_rows:
        lines.append(gap.join(
            cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
    return "\n".join(line.rstrip() for line in lines)
