"""Mathematical facts as computed relations (paper §3.6).

For every two number entities exactly one of ``(E1, <, E2)`` /
``(E1, >, E2)`` holds, and for every two entities exactly one of
``(E1, =, E2)`` / ``(E1, ≠, E2)``.  ``≤`` and ``≥`` are "defined
through simple inference rules" in the paper; here they are computed
directly.

Semantics of equality: two entities are equal if they are the same
name, or if both are numeric and denote the same number (so
``$25,000 = 25000`` — the paper's dollar spellings compare by value).

Enumeration: when one or both sides of a comparator are free, the
relation enumerates over the active domain (numeric entities only, for
the order comparators).  The domain is finite, so the paper's
"infinitely many mathematical facts" never materialize.
"""

from __future__ import annotations

import operator
from typing import Callable, Iterator, List, Tuple

from ..core.entities import EQ, GE, GT, LE, LT, NE, numeric_value
from ..core.facts import Fact, Template, Variable
from ..core.store import FactStore
from .computed import ComputedRelation

_ORDER_OPS: dict = {
    LT: operator.lt,
    GT: operator.gt,
    LE: operator.le,
    GE: operator.ge,
}


def entities_equal(left: str, right: str) -> bool:
    """The paper's ``=`` relation over entity names (value-aware for
    numbers)."""
    if left == right:
        return True
    left_value = numeric_value(left)
    if left_value is None:
        return False
    right_value = numeric_value(right)
    return right_value is not None and left_value == right_value


def compare(relationship: str, left: str, right: str) -> bool:
    """Truth of ``(left, relationship, right)`` for a math comparator.

    Order comparators are false (not an error) when either side is
    non-numeric: ``(JOHN, >, 20000)`` simply matches nothing, mirroring
    "the database includes the facts ... (25000, >, 20000)" — there is
    no such fact for a non-number.
    """
    if relationship == EQ:
        return entities_equal(left, right)
    if relationship == NE:
        return not entities_equal(left, right)
    op = _ORDER_OPS[relationship]
    left_value = numeric_value(left)
    if left_value is None:
        return False
    right_value = numeric_value(right)
    if right_value is None:
        return False
    return op(left_value, right_value)


class MathRelation(ComputedRelation):
    """The six comparators, as one computed relation."""

    HANDLED = frozenset(_ORDER_OPS) | {EQ, NE}

    def handles(self, pattern: Template) -> bool:
        return (isinstance(pattern.relationship, str)
                and pattern.relationship in self.HANDLED)

    # ------------------------------------------------------------------
    def _domain(self, store: FactStore, relationship: str) -> List[str]:
        """Candidate entities for a free side of ``relationship``."""
        entities = store.entities()
        if relationship in (EQ, NE):
            return sorted(entities)
        return sorted(e for e in entities if numeric_value(e) is not None)

    def facts(self, pattern: Template, store: FactStore) -> Iterator[Fact]:
        relationship = pattern.relationship
        source, target = pattern.source, pattern.target
        source_free = isinstance(source, Variable)
        target_free = isinstance(target, Variable)

        if not source_free and not target_free:
            if compare(relationship, source, target):
                yield Fact(source, relationship, target)
            return

        # ``(x, =, JOHN)`` binds directly without enumeration.
        if relationship == EQ:
            if source_free and not target_free:
                yield Fact(target, relationship, target)
                return
            if target_free and not source_free:
                yield Fact(source, relationship, source)
                return

        domain = self._domain(store, relationship)
        if source_free and target_free:
            same_variable = source == target
            for left in domain:
                if same_variable:
                    if compare(relationship, left, left):
                        yield Fact(left, relationship, left)
                    continue
                for right in domain:
                    if compare(relationship, left, right):
                        yield Fact(left, relationship, right)
            return

        if source_free:
            for left in domain:
                if compare(relationship, left, target):
                    yield Fact(left, relationship, target)
            return

        for right in domain:
            if compare(relationship, source, right):
                yield Fact(source, relationship, right)

    def estimate(self, pattern: Template, store: FactStore) -> int:
        free = sum(
            1 for c in (pattern.source, pattern.target)
            if isinstance(c, Variable))
        if free == 0:
            return 1
        if pattern.relationship == EQ:
            return 1 if free == 1 else len(store.entities())
        return max(1, len(store.entities())) ** free
