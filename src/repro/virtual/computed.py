"""Computed (virtual) relations.

Paper §3.6: "it is obvious that we may assume the existence of all
relevant mathematical relationships, without actually storing them as
ordinary facts."  This module provides the mechanism: a
:class:`ComputedRelation` contributes facts at match time, and a
:class:`VirtualRegistry` merges any number of them behind the same
template-matching interface the :class:`~repro.core.store.FactStore`
offers.

Ground rule: a computed relation only contributes when the template's
*relationship position is ground* and names that relation.  A fully
open template such as ``(x, y, z)`` therefore matches only stored and
derived facts — otherwise every navigation table would drown in the
infinitely many mathematical facts the paper assumes.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from ..core.facts import Binding, Fact, Template
from ..core.store import FactStore


class ComputedRelation:
    """Interface for a virtually present family of facts.

    Subclasses override :meth:`handles` and :meth:`facts`;
    :meth:`estimate` feeds the query planner.
    """

    def handles(self, pattern: Template) -> bool:
        """True if this relation can contribute matches for ``pattern``."""
        raise NotImplementedError

    def facts(self, pattern: Template, store: FactStore) -> Iterator[Fact]:
        """Yield the virtual facts matching ``pattern``.

        ``store`` supplies the active domain (``store.entities()``) for
        relations that enumerate over it.  Yielded facts must actually
        match ``pattern`` (the registry does not re-check).
        """
        raise NotImplementedError

    def estimate(self, pattern: Template, store: FactStore) -> int:
        """Upper bound on the number of facts :meth:`facts` will yield."""
        variables = pattern.variables()
        if not variables:
            return 1
        return max(1, len(store.entities())) ** len(set(variables))

    def facts_many(self, patterns: Sequence[Template],
                   store: FactStore) -> List[List[Fact]]:
        """Batched :meth:`facts`: one result list per input pattern.

        The default loops, which keeps every existing computed relation
        correct under the set-at-a-time executor; relations with a
        cheaper bulk form (shared domain enumeration, vectorized
        comparison) may override it.  Callers only pass patterns for
        which :meth:`handles` is true.
        """
        return [list(self.facts(pattern, store)) for pattern in patterns]


class VirtualRegistry:
    """An ordered collection of computed relations."""

    def __init__(self, relations: Iterable[ComputedRelation] = ()):
        self._relations: List[ComputedRelation] = list(relations)

    def register(self, relation: ComputedRelation) -> None:
        """Add a computed relation to the registry."""
        self._relations.append(relation)

    def __iter__(self) -> Iterator[ComputedRelation]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def match(self, pattern: Template, store: FactStore) -> Iterator[Fact]:
        """All virtual facts matching ``pattern``, deduplicated."""
        seen = set()
        for relation in self._relations:
            if not relation.handles(pattern):
                continue
            for virtual_fact in relation.facts(pattern, store):
                if virtual_fact not in seen:
                    seen.add(virtual_fact)
                    yield virtual_fact

    def estimate(self, pattern: Template, store: FactStore) -> int:
        """Summed planner estimate over contributing relations."""
        return sum(
            relation.estimate(pattern, store) for relation in self._relations
            if relation.handles(pattern))

    def match_many(self, patterns: Sequence[Template],
                   store: FactStore) -> List[List[Fact]]:
        """Batched :meth:`match`: one deduplicated list per pattern.

        Each relation's :meth:`ComputedRelation.facts_many` is called
        once with the subset of patterns it handles, so a relation with
        a bulk override pays its setup cost once per batch rather than
        once per pattern.
        """
        results: List[List[Fact]] = [[] for _ in patterns]
        seen: List[set] = [set() for _ in patterns]
        for relation in self._relations:
            indices = [i for i, pattern in enumerate(patterns)
                       if relation.handles(pattern)]
            if not indices:
                continue
            batches = relation.facts_many(
                [patterns[i] for i in indices], store)
            for i, batch in zip(indices, batches):
                bucket, marker = results[i], seen[i]
                for virtual_fact in batch:
                    if virtual_fact not in marker:
                        marker.add(virtual_fact)
                        bucket.append(virtual_fact)
        return results


class FactView:
    """Store ∪ virtual relations, behind one matching interface.

    This is what queries, browsing, and integrity checking run against:
    the materialized closure plus the paper's assumed-but-not-stored
    facts.  The view is read-only.
    """

    def __init__(self, store: FactStore, virtual: Optional[VirtualRegistry] = None):
        self.store = store
        self.virtual = virtual if virtual is not None else VirtualRegistry()

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(self, pattern: Template,
              binding: Optional[Binding] = None) -> Iterator[Fact]:
        """All facts — stored or virtual — matching ``pattern``."""
        if binding:
            pattern = pattern.substitute(binding)
        seen = set()
        for stored_fact in self.store.match(pattern):
            seen.add(stored_fact)
            yield stored_fact
        for virtual_fact in self.virtual.match(pattern, self.store):
            if virtual_fact not in seen:
                yield virtual_fact

    def match_many(self, patterns: Sequence[Template]) -> List[List[Fact]]:
        """Batched :meth:`match`: one result list per input pattern.

        Falls back to per-pattern :meth:`FactStore.match` when the
        underlying store lacks a ``match_many`` (e.g. the lazy rules
        engine), so the set-at-a-time executor can run over any store.
        """
        store_many = getattr(self.store, "match_many", None)
        if store_many is not None:
            stored = store_many(patterns)
        else:
            stored = [list(self.store.match(p)) for p in patterns]
        virtual = self.virtual.match_many(patterns, self.store)
        merged: List[List[Fact]] = []
        for stored_batch, virtual_batch in zip(stored, virtual):
            if not virtual_batch:
                merged.append(stored_batch)
                continue
            seen = set(stored_batch)
            combined = list(stored_batch)
            combined.extend(
                f for f in virtual_batch if f not in seen)
            merged.append(combined)
        return merged

    def solutions(self, pattern: Template,
                  binding: Optional[Binding] = None) -> Iterator[Binding]:
        """All extended bindings under which ``pattern`` matches."""
        base = binding or {}
        substituted = pattern.substitute(base) if base else pattern
        for matched in self.match(substituted):
            extended = substituted.match(matched, base)
            if extended is not None:
                yield extended

    def __contains__(self, fact: Fact) -> bool:
        if fact in self.store:
            return True
        pattern = Template(*fact)
        return any(True for _ in self.virtual.match(pattern, self.store))

    # ------------------------------------------------------------------
    # Introspection (delegated to the store)
    # ------------------------------------------------------------------
    def entities(self):
        """The active domain (stored entities only — the virtual
        entities ``Δ``/``∇`` and the unbounded numbers are excluded, so
        quantifiers and ``≠`` stay finite)."""
        return self.store.entities()

    def relationships(self):
        return self.store.relationships()

    def has_entity(self, entity: str) -> bool:
        return self.store.has_entity(entity)

    def __len__(self) -> int:
        return len(self.store)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self.store)

    @property
    def exact_counts(self) -> bool:
        """True when the underlying store's ``count_estimate`` returns
        exact cardinalities (interned columnar stores: index length
        lookups) rather than candidate-set upper bounds.  The planner
        trusts exact counts directly instead of applying its sampling
        fudge factors."""
        return bool(getattr(self.store, "count_estimate_exact", False))

    def count_estimate(self, pattern: Template,
                       binding: Optional[Binding] = None) -> int:
        """Planner estimate: stored candidates + virtual contributions."""
        if binding:
            pattern = pattern.substitute(binding)
        return (self.store.count_estimate(pattern)
                + self.virtual.estimate(pattern, self.store))
