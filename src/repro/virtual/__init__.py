"""Virtual (computed) relations: the facts the paper assumes present
"without actually storing them" (§3.6, §2.3).

Mathematical comparisons over numeric entities, the reflexive ``≺``,
the universal ``(E, ≺, Δ)`` / ``(∇, ≺, E)`` facts, and
endpoint-weakened templates are all evaluated on demand by computed
predicates — never materialized into the store.  The registry is
consulted by template matching after the materialized facts.

Example::

    from repro import Database

    db = Database()
    db.add("JOHN", "EARNS", "$25000")
    assert db.ask("($25000, >, 20000)")     # a virtual math fact
    assert db.ask("(EARNS, ≺, EARNS)")      # reflexive ≺, computed
"""

from .computed import ComputedRelation, FactView, VirtualRegistry
from .math_facts import MathRelation, compare, entities_equal
from .special import (
    EndpointWitness,
    ReflexiveGeneralization,
    standard_virtual_registry,
)

__all__ = [
    "ComputedRelation", "FactView", "VirtualRegistry", "MathRelation",
    "compare", "entities_equal", "EndpointWitness",
    "ReflexiveGeneralization", "standard_virtual_registry",
]
