"""Virtual (computed) relations: the facts the paper assumes present
"without actually storing them" (§3.6, §2.3)."""

from .computed import ComputedRelation, FactView, VirtualRegistry
from .math_facts import MathRelation, compare, entities_equal
from .special import (
    EndpointWitness,
    ReflexiveGeneralization,
    standard_virtual_registry,
)

__all__ = [
    "ComputedRelation", "FactView", "VirtualRegistry", "MathRelation",
    "compare", "entities_equal", "EndpointWitness",
    "ReflexiveGeneralization", "standard_virtual_registry",
]
