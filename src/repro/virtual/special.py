"""Virtual facts for the special entities ``≺``, ``Δ``, ``∇`` (§2.3).

Three families of facts are *represented* in every database without
being stored:

1. Generalization is reflexive: ``(E, ≺, E)`` for every entity.
2. ``Δ`` generalizes everything: ``(E, ≺, Δ)``; ``∇`` is generalized by
   everything: ``(∇, ≺, E)``.
3. ``Δ`` in relationship position is the generalization of every
   relationship (it follows from rule (1) applied with ``(r, ≺, Δ)``):
   ``(s, Δ, t)`` holds whenever *some* stored fact relates ``s`` to
   ``t``.  Probing relies on this when it weakens a relationship all
   the way to ``Δ`` (§5.2).
"""

from __future__ import annotations

from typing import Iterator

from ..core.entities import BOTTOM, ISA, TOP
from ..core.facts import Fact, Template, Variable
from ..core.store import FactStore
from .computed import ComputedRelation


class ReflexiveGeneralization(ComputedRelation):
    """``(E, ≺, E)``, ``(E, ≺, Δ)``, ``(∇, ≺, E)`` for the active
    domain plus the two virtual endpoints themselves."""

    def handles(self, pattern: Template) -> bool:
        return pattern.relationship == ISA

    def _domain(self, store: FactStore):
        domain = set(store.entities())
        domain.update((TOP, BOTTOM))
        return sorted(domain)

    def facts(self, pattern: Template, store: FactStore) -> Iterator[Fact]:
        source, target = pattern.source, pattern.target
        source_free = isinstance(source, Variable)
        target_free = isinstance(target, Variable)
        in_domain = (
            lambda e: e in (TOP, BOTTOM) or store.has_entity(e))

        if not source_free and not target_free:
            if not (in_domain(source) and in_domain(target)):
                return
            if source == target:
                yield Fact(source, ISA, target)
            elif target == TOP or source == BOTTOM:
                yield Fact(source, ISA, target)
            return

        if source_free and target_free:
            same_variable = source == target
            for entity in self._domain(store):
                yield Fact(entity, ISA, entity)
                if same_variable:
                    continue
                if entity != TOP:
                    yield Fact(entity, ISA, TOP)
                if entity != BOTTOM:
                    yield Fact(BOTTOM, ISA, entity)
            return

        if source_free:
            if not in_domain(target):
                return
            yield Fact(target, ISA, target)
            if target != BOTTOM:
                yield Fact(BOTTOM, ISA, target)
            if target == TOP:
                for entity in self._domain(store):
                    if entity != TOP:
                        yield Fact(entity, ISA, TOP)
            return

        # target free
        if not in_domain(source):
            return
        yield Fact(source, ISA, source)
        if source != TOP:
            yield Fact(source, ISA, TOP)
        if source == BOTTOM:
            for entity in self._domain(store):
                if entity != BOTTOM:
                    yield Fact(BOTTOM, ISA, entity)

    def estimate(self, pattern: Template, store: FactStore) -> int:
        free = sum(
            1 for c in (pattern.source, pattern.target)
            if isinstance(c, Variable))
        if free == 0:
            return 1
        if free == 1:
            component = (pattern.target
                         if isinstance(pattern.source, Variable)
                         else pattern.source)
            if component in (TOP, BOTTOM):
                return len(store.entities()) + 2
            return 2
        return 3 * (len(store.entities()) + 2)


class EndpointWitness(ComputedRelation):
    """Templates whose positions have been weakened to the hierarchy
    endpoints, witnessed by stored facts.

    Rule (1) makes the endpoints universal: ``∇ ≺ s`` gives
    ``(s,r,t) ⇒ (∇,r,t)``; ``r ≺ Δ`` gives ``(s,r,t) ⇒ (s,Δ,t)``; and
    ``t ≺ Δ`` gives ``(s,r,t) ⇒ (s,r,Δ)``.  So a template with ``∇`` as
    source / ``Δ`` as relationship / ``Δ`` as target (in any
    combination — retraction can weaken several positions) holds iff
    *some stored fact* witnesses the remaining positions.

    Only stored/derived facts witness the endpoints — the virtual
    mathematical facts do not, or every pair of numbers would be
    ``Δ``-related.
    """

    def handles(self, pattern: Template) -> bool:
        return (pattern.source == BOTTOM or pattern.relationship == TOP
                or pattern.target == TOP)

    @staticmethod
    def _probe(pattern: Template) -> Template:
        source = (Variable("__witness_s__")
                  if pattern.source == BOTTOM else pattern.source)
        relationship = (Variable("__witness_r__")
                        if pattern.relationship == TOP
                        else pattern.relationship)
        target = (Variable("__witness_t__")
                  if pattern.target == TOP else pattern.target)
        return Template(source, relationship, target)

    def facts(self, pattern: Template, store: FactStore) -> Iterator[Fact]:
        probe = self._probe(pattern)
        seen = set()
        for witness in store.match(probe):
            projected = Fact(
                BOTTOM if pattern.source == BOTTOM else witness.source,
                TOP if pattern.relationship == TOP
                else witness.relationship,
                TOP if pattern.target == TOP else witness.target,
            )
            if projected not in seen:
                seen.add(projected)
                yield projected

    def estimate(self, pattern: Template, store: FactStore) -> int:
        return store.count_estimate(self._probe(pattern))


def standard_virtual_registry():
    """The registry every :class:`~repro.db.Database` installs:
    math facts + reflexive generalization + endpoint witnessing."""
    from .computed import VirtualRegistry
    from .math_facts import MathRelation

    return VirtualRegistry([
        MathRelation(),
        ReflexiveGeneralization(),
        EndpointWitness(),
    ])
