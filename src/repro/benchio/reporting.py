"""Plain-text reporting for benchmark sweeps.

Benchmarks print the same rows/series the experiment index in DESIGN.md
promises; these formatters keep that output uniform and diffable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .harness import Sweep


def format_value(value: object) -> str:
    """Render one cell: floats compactly, everything else via ``str``.

    Floats use fixed-point with up to four decimals; scientific
    notation only when fixed-point would collapse the value to zero
    (so ``0.0009999`` renders ``0.001`` like its neighbors, not
    ``1.00e-03``).  Negative values mirror positive ones exactly.
    """
    if isinstance(value, float):
        if value == 0:
            return "0"
        text = f"{value:.4f}".rstrip("0").rstrip(".")
        if text.lstrip("-") == "0":
            return f"{value:.2e}"
        return text
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """A fixed-width text table."""
    text_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [
        max([len(header)] + [len(row[i]) for row in text_rows])
        for i, header in enumerate(headers)
    ]
    gap = "  "
    lines = [gap.join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append(gap.join("-" * w for w in widths))
    for row in text_rows:
        lines.append(gap.join(
            cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
    return "\n".join(lines)


def format_sweep(sweep: Sweep, title: Optional[str] = None) -> str:
    """Render a sweep as a table, preceded by a title line."""
    columns = sweep.columns()
    rows = [[row.get(column, "") for column in columns]
            for row in sweep.rows]
    heading = title if title is not None else sweep.name
    return f"== {heading} ==\n" + format_table(columns, rows)


def print_sweep(sweep: Sweep, title: Optional[str] = None) -> None:
    print()
    print(format_sweep(sweep, title))
