"""Measurement helpers shared by the benchmark modules.

pytest-benchmark drives the timed loops; these helpers cover what it
does not: parameter sweeps that produce the paper-style tables/series,
and simple wall-clock measurement for one-shot shape checks inside
benchmark files.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple


@dataclass
class Measurement:
    """One timed run."""

    label: str
    seconds: float
    metrics: Dict[str, object] = field(default_factory=dict)


def timed(function: Callable[[], object], repeat: int = 3) -> float:
    """Best-of-``repeat`` wall-clock seconds for ``function()``."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        function()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best


@dataclass
class Sweep:
    """A parameter sweep producing one row per parameter value."""

    name: str
    parameter: str
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add(self, value: object, **metrics: object) -> None:
        row: Dict[str, object] = {self.parameter: value}
        row.update(metrics)
        self.rows.append(row)

    def columns(self) -> List[str]:
        columns: List[str] = [self.parameter]
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        return columns

    def series(self, metric: str) -> List[Tuple[object, object]]:
        """(parameter, metric) pairs — one plotted line."""
        return [(row[self.parameter], row.get(metric)) for row in self.rows]
