"""Measurement helpers shared by the benchmark modules.

pytest-benchmark drives the timed loops; these helpers cover what it
does not: parameter sweeps that produce the paper-style tables/series,
and simple wall-clock measurement for one-shot shape checks inside
benchmark files.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple


@dataclass
class Measurement:
    """One timed run, optionally with obs counters beside the seconds."""

    label: str
    seconds: float
    metrics: Dict[str, object] = field(default_factory=dict)


def timed(function: Callable[[], object], repeat: int = 3) -> float:
    """Best-of-``repeat`` wall-clock seconds for ``function()``."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        function()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best


def measure(label: str, function: Callable[[], object], repeat: int = 3,
            observe: bool = True,
            counter_prefixes: Optional[Sequence[str]] = None) -> Measurement:
    """Time a function *and* explain it: best-of-``repeat`` untraced
    wall clock plus obs counters from one extra traced run.

    The timing runs are never traced, so the seconds are comparable to
    plain :func:`timed`; the counters (rule firings, facts scanned,
    index lookups, …) come from a separate observed run and land in
    ``Measurement.metrics``, making a benchmark trajectory explain *why*
    a number moved, not just that it did.  ``counter_prefixes`` filters
    the attached counters (default: all of them).
    """
    seconds = timed(function, repeat=repeat)
    metrics: Dict[str, object] = {}
    if observe:
        from ..obs import Tracer, use_tracer

        with use_tracer(Tracer()) as tracer:
            function()
        for name, value in sorted(tracer.counters.items()):
            if counter_prefixes is None or any(
                    name.startswith(prefix) for prefix in counter_prefixes):
                metrics[name] = value
        for name, value in sorted(tracer.gauges.items()):
            if counter_prefixes is None or any(
                    name.startswith(prefix) for prefix in counter_prefixes):
                metrics[name] = value
    return Measurement(label=label, seconds=seconds, metrics=metrics)


def plan_stats(run) -> Dict[str, object]:
    """Per-operator plan statistics of one executed compiled query.

    ``run`` is a :class:`repro.query.exec.PlanRun` (duck-typed so this
    module stays import-light).  Returns a JSON-able block — one entry
    per operator in plan preorder with estimated vs actual rows, plus
    the adaptive re-order count — for embedding in ``BENCH_*.json``
    rows, so a committed number explains *which operator* moved, not
    just that the total did.
    """
    return {
        "operators": [stats.as_dict() for stats in run.operators],
        "replans": run.replans,
    }


def rss_mb(pid: Optional[int] = None) -> Optional[float]:
    """Resident set size of a process in MiB, or ``None`` off-Linux.

    Reads ``/proc/<pid>/status`` so it works for *other* processes —
    the replica benchmarks sample their worker PIDs to attribute
    memory per process.  For the calling process, falls back to
    ``resource.getrusage`` where procfs is unavailable.
    """
    import os

    target = os.getpid() if pid is None else pid
    value = _proc_status_kb(target, "VmRSS")
    if value is not None:
        return round(value / 1024.0, 2)
    if pid is None or pid == os.getpid():
        try:
            import resource

            usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            # Linux reports KiB, macOS bytes; procfs already covered
            # Linux, so bytes it is.
            return round(usage / (1024.0 * 1024.0), 2)
        except (ImportError, ValueError, OSError):
            return None
    return None


def rss_anon_mb(pid: Optional[int] = None) -> Optional[float]:
    """Anonymous (private, non-shared) resident memory in MiB.

    This is the column that distinguishes a replica that *copied* the
    fact heap (the copy is anonymous memory, counted here per process)
    from one that *attached* a shared-memory generation (the columns
    are ``RssShmem`` — one set of physical pages no matter how many
    workers map them).  ``None`` when the kernel does not break RSS
    down (pre-4.5 Linux, non-Linux).
    """
    import os

    value = _proc_status_kb(os.getpid() if pid is None else pid,
                            "RssAnon")
    return None if value is None else round(value / 1024.0, 2)


def _proc_status_kb(pid: int, key: str) -> Optional[int]:
    try:
        with open(f"/proc/{pid}/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith(key + ":"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return None


def host_metadata() -> Dict[str, object]:
    """The host facts needed to interpret a committed benchmark number.

    Scaling results in particular are meaningless without the core
    count they ran on (a replica pool cannot show a 4-worker speedup
    on a 1-core container), so every ``write_bench_json`` document
    embeds this.
    """
    import os
    import platform

    metadata: Dict[str, object] = {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.system(),
        "machine": platform.machine(),
    }
    try:
        metadata["load_avg_1m"] = round(os.getloadavg()[0], 3)
    except (AttributeError, OSError):
        pass
    sampled = rss_mb()
    if sampled is not None:
        metadata["rss_mb"] = sampled
    try:
        pages = os.sysconf("SC_PHYS_PAGES")
        page_size = os.sysconf("SC_PAGE_SIZE")
        if pages > 0 and page_size > 0:
            metadata["total_memory_bytes"] = pages * page_size
    except (AttributeError, ValueError, OSError):
        pass
    return metadata


def write_bench_json(path: str, benchmark: str,
                     rows: Sequence[Dict[str, object]],
                     summary: Optional[Dict[str, object]] = None,
                     config: Optional[Dict[str, object]] = None,
                     metrics: Optional[Dict[str, object]] = None) -> dict:
    """Persist a benchmark result matrix as a JSON document.

    ``rows`` is the flat result matrix (one dict per measured cell —
    e.g. engine × dataset × limit); ``summary`` holds the headline
    numbers a trajectory tracker reads without joining the matrix;
    ``config`` records how the run was parameterized; ``metrics`` is an
    optional :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` taken
    during an observed pass, stamped alongside the timings so committed
    numbers carry their own telemetry.  Host metadata (core count,
    Python version, platform, load, memory) is stamped automatically so
    committed numbers stay interpretable.  Returns the document
    written, for callers that also want to print it.
    """
    document: Dict[str, object] = {"benchmark": benchmark}
    document["host"] = host_metadata()
    if config:
        document["config"] = dict(config)
    document["results"] = [dict(row) for row in rows]
    if summary:
        document["summary"] = dict(summary)
    if metrics:
        document["metrics"] = dict(metrics)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return document


@dataclass
class Sweep:
    """A parameter sweep producing one row per parameter value."""

    name: str
    parameter: str
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add(self, value: object, **metrics: object) -> None:
        row: Dict[str, object] = {self.parameter: value}
        row.update(metrics)
        self.rows.append(row)

    def columns(self) -> List[str]:
        columns: List[str] = [self.parameter]
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        return columns

    def series(self, metric: str) -> List[Tuple[object, object]]:
        """(parameter, metric) pairs — one plotted line."""
        return [(row[self.parameter], row.get(metric)) for row in self.rows]
