"""Benchmark harness: sweeps, timing, and text reporting.

Shared plumbing for ``benchmarks/``: best-of-N timing
(:func:`~repro.benchio.harness.timed`), measurements that attach obs
counters from a separately observed run
(:func:`~repro.benchio.harness.measure`), parameter sweeps,
fixed-width table printing, and the ``BENCH_*.json`` document writer
(:func:`~repro.benchio.harness.write_bench_json`).

Example::

    from repro.benchio import timed

    seconds = timed(lambda: sum(range(1000)), repeat=3)
    assert seconds > 0.0
"""

from .harness import (Measurement, Sweep, host_metadata, measure,
                      plan_stats, rss_anon_mb, rss_mb, timed,
                      write_bench_json)
from .reporting import format_sweep, format_table, format_value, print_sweep

__all__ = ["Measurement", "Sweep", "measure", "timed", "write_bench_json",
           "host_metadata", "plan_stats", "rss_mb", "rss_anon_mb",
           "format_sweep", "format_table", "format_value", "print_sweep"]
