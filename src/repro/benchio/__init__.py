"""Benchmark harness: sweeps, timing, and text reporting."""

from .harness import Measurement, Sweep, measure, timed, write_bench_json
from .reporting import format_sweep, format_table, format_value, print_sweep

__all__ = ["Measurement", "Sweep", "measure", "timed", "write_bench_json",
           "format_sweep", "format_table", "format_value", "print_sweep"]
