"""Benchmark harness: sweeps, timing, and text reporting."""

from .harness import Measurement, Sweep, timed
from .reporting import format_sweep, format_table, format_value, print_sweep

__all__ = ["Measurement", "Sweep", "timed", "format_sweep", "format_table",
           "format_value", "print_sweep"]
