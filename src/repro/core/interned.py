"""Interned columnar fact storage: flat int arrays + CSR indexes.

The hash-indexed :class:`~repro.core.store.FactStore` answers every
access pattern in O(1), but it pays for that with an object graph —
one :class:`~repro.core.facts.Fact` tuple per fact plus six
dict-of-set indexes holding references to them — that is expensive to
*copy* and impossible to *share* across processes.  At a million facts
the replica pool spent most of its bootstrap shipping and rebuilding
exactly that graph.

This module stores the same information relationally:

* an :class:`Interner` — a bidirectional str↔int dictionary over every
  entity that occurs in any position;
* a :class:`ColumnarGeneration` — the facts as three parallel
  ``array('i')`` columns of interned ids, sorted by ``(s, r, t)``, with
  the seven access patterns served by CSR-style indexes: offset-range
  arrays for the single-position patterns and sorted packed-key arrays
  (probed by binary search) for the two-position patterns;
* an :class:`InternedFactStore` — a drop-in :class:`FactStore`
  replacement layering a small mutable *overlay* (adds) and a tombstone
  set (removes) over one frozen generation, with
  :meth:`~InternedFactStore.compact` folding everything into a fresh
  generation.

Because a generation is nothing but flat arrays and one string blob,
it can be placed in :mod:`multiprocessing.shared_memory` and *attached*
by other processes: :meth:`ColumnarGeneration.share` publishes a
generation under a :class:`GenerationHandle` (segment name + layout),
and :meth:`ColumnarGeneration.attach` maps it with zero copying of the
fact data.  The replica pool bootstraps workers by shipping a handle
instead of a pickled snapshot (see :mod:`repro.serve.replica`).

Example::

    from repro.core import Fact
    from repro.core.interned import InternedFactStore

    store = InternedFactStore.from_facts(
        [Fact("JOHN", "EARNS", "$25000")])
    assert [f.target for f in store.lookup("JOHN")] == ["$25000"]
    assert store.count_estimate_exact
"""

from __future__ import annotations

import itertools
import os
import secrets
from array import array
from bisect import bisect_left
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..obs import tracer as _obs
from .errors import FrozenStoreError
from .facts import Fact, Template, Variable
from .store import FactStore

__all__ = [
    "IdCodec", "Interner", "ColumnarGeneration", "GenerationHandle",
    "InternedFactStore", "attach_shared_memory", "unlink_generation",
]

#: Position letters to tuple indexes, shared with the query executor.
_POSITION = {"s": 0, "r": 1, "t": 2}


class IdCodec:
    """A per-execution id⇄name codec over one generation's interner.

    Base ids (``< base``) come straight from the frozen name table;
    names outside it — overlay facts, virtual facts, query constants
    the generation never saw — get *scratch* ids ``>= base``, assigned
    densely per codec instance.  Encoding is injective in both
    directions, so id equality is name equality: the executor's join
    keys, dedup sets, and repeated-variable checks can all operate on
    machine ints and the answers stay bit-identical to the string path.

    ``decodes`` counts string materializations through this codec (the
    ``interned.decodes`` telemetry source); the executor flushes it
    after result emission.
    """

    __slots__ = ("interner", "base", "decodes", "_scratch",
                 "_scratch_ids")

    def __init__(self, interner):
        self.interner = interner
        self.base = len(interner)
        self.decodes = 0
        self._scratch: List[str] = []
        self._scratch_ids: Dict[str, int] = {}

    def encode(self, name: str) -> int:
        i = self.interner.id_of(name)
        if i is not None:
            return i
        i = self._scratch_ids.get(name)
        if i is None:
            i = self.base + len(self._scratch)
            self._scratch_ids[name] = i
            self._scratch.append(name)
        return i

    def decode(self, i: int) -> str:
        self.decodes += 1
        if i < self.base:
            return self.interner.names[i]
        return self._scratch[i - self.base]


class Interner:
    """An append-only bidirectional str↔int dictionary.

    Ids are dense and assigned in first-intern order; a generation's
    columns refer to entities exclusively by these ids.  The table is
    immutable once a generation is built from it (nothing ever needs a
    *new* id afterwards: overlay facts keep their strings).
    """

    __slots__ = ("names", "_ids")

    def __init__(self, names: Sequence[str] = ()):
        self.names: List[str] = list(names)
        self._ids: Dict[str, int] = {
            name: i for i, name in enumerate(self.names)}

    def intern(self, name: str) -> int:
        """The id for ``name``, assigning a fresh one if unseen."""
        i = self._ids.get(name)
        if i is None:
            i = len(self.names)
            self.names.append(name)
            self._ids[name] = i
        return i

    def id_of(self, name: str) -> Optional[int]:
        """The id for ``name``, or ``None`` if it was never interned."""
        return self._ids.get(name)

    def name_of(self, i: int) -> str:
        return self.names[i]

    def __len__(self) -> int:
        return len(self.names)

    def __contains__(self, name: str) -> bool:
        return name in self._ids


class _LazyNames:
    """A read-only id→str sequence over the shared name table.

    Decodes one name per access and memoizes it, so attaching to a
    generation never pays for strings the replica does not touch."""

    __slots__ = ("_blob", "_offsets", "_memo")

    def __init__(self, blob, offsets, n: int):
        self._blob = blob
        self._offsets = offsets
        self._memo: List[Optional[str]] = [None] * n

    def __len__(self) -> int:
        return len(self._memo)

    def __getitem__(self, i: int) -> str:
        name = self._memo[i]
        if name is None:
            offsets = self._offsets
            name = str(bytes(self._blob[offsets[i]:offsets[i + 1]]),
                       "utf-8")
            self._memo[i] = name
        return name

    def __iter__(self) -> Iterator[str]:
        for i in range(len(self._memo)):
            yield self[i]


_ID_MISS = object()


class SharedInterner:
    """A read-only str↔int dictionary over the shared name table.

    Drop-in for :class:`Interner` on the attach side, minus
    :meth:`intern` (a generation's table is frozen; overlay facts keep
    their strings).  ``names`` decodes lazily; ``id_of`` binary-searches
    the ``name_sort`` permutation the sharer wrote — O(log n) over the
    shared bytes, memoized per process — so neither direction ever
    materializes the full table."""

    __slots__ = ("names", "_blob", "_offsets", "_order", "_n", "_ids")

    def __init__(self, blob, offsets, order, n: int):
        self.names = _LazyNames(blob, offsets, n)
        self._blob = blob
        self._offsets = offsets
        self._order = order
        self._n = n
        self._ids: Dict[str, object] = {}

    def intern(self, name: str) -> int:
        raise RuntimeError("shared name table is frozen")

    def id_of(self, name: str) -> Optional[int]:
        i = self._ids.get(name, _ID_MISS)
        if i is not _ID_MISS:
            return i  # type: ignore[return-value]
        target = name.encode("utf-8")
        blob, offsets, order = self._blob, self._offsets, self._order
        lo, hi = 0, self._n
        while lo < hi:
            mid = (lo + hi) // 2
            j = order[mid]
            if bytes(blob[offsets[j]:offsets[j + 1]]) < target:
                lo = mid + 1
            else:
                hi = mid
        found: Optional[int] = None
        if lo < self._n:
            j = order[lo]
            if bytes(blob[offsets[j]:offsets[j + 1]]) == target:
                found = j
        self._ids[name] = found
        return found

    def name_of(self, i: int) -> str:
        return self.names[i]

    def __len__(self) -> int:
        return self._n

    def __contains__(self, name: str) -> bool:
        return self.id_of(name) is not None


class GenerationHandle:
    """Everything needed to attach a shared generation from another
    process: the segment name plus the layout of the arrays inside it.

    Plain picklable data — this is what the replica pool ships over a
    pipe (or through ``spawn`` process arguments) instead of the fact
    heap itself.
    """

    __slots__ = ("name", "n", "n_names", "version", "layout", "size")

    def __init__(self, name: str, n: int, n_names: int, version: int,
                 layout: Tuple[Tuple[str, str, int], ...], size: int):
        self.name = name
        self.n = n
        self.n_names = n_names
        self.version = version
        self.layout = layout        # ((field, typecode, count), ...)
        self.size = size

    def __getstate__(self):
        return (self.name, self.n, self.n_names, self.version,
                self.layout, self.size)

    def __setstate__(self, state):
        (self.name, self.n, self.n_names, self.version,
         self.layout, self.size) = state

    def __repr__(self) -> str:
        return (f"GenerationHandle({self.name!r}, n={self.n},"
                f" names={self.n_names}, {self.size} bytes)")


def attach_shared_memory(name: str):
    """Attach an existing shared-memory segment *without* registering
    it with the resource tracker.

    The creator of a segment owns its lifetime; an attaching process
    must not let Python's ``resource_tracker`` adopt the name, or every
    worker exit produces "leaked shared_memory" warnings and a
    double-unlink race.  Python 3.13 has ``track=False`` for exactly
    this; earlier versions need the documented unregister workaround.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        segment = shared_memory.SharedMemory(name=name)
        try:
            from multiprocessing import resource_tracker
            resource_tracker.unregister(segment._name,  # noqa: SLF001
                                        "shared_memory")
        except Exception:  # pragma: no cover - defensive
            pass
        return segment


def unlink_generation(name: str) -> bool:
    """Unlink a shared generation segment by name (idempotent).

    Returns True if the segment existed.  Already-attached processes
    keep their mappings (POSIX semantics); the memory is reclaimed when
    the last of them detaches.
    """
    from multiprocessing import shared_memory

    # Deliberately tracked: attaching registers the name with this
    # process's resource tracker and unlink() unregisters it, so the
    # pair stays balanced whether or not this process created the
    # segment (registration is a set — the creator's own entry merges).
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.unlink()
    segment.close()
    return True


def _pack(a: int, b: int, width: int) -> int:
    """Pack a two-id key into one integer (``width`` = id universe)."""
    return a * width + b


class ColumnarGeneration:
    """One frozen, fully indexed columnar snapshot of a fact set.

    Facts live in three parallel id columns sorted by ``(s, r, t)`` —
    so the natural order doubles as the ``s`` and ``(s, r)`` clustered
    index — plus two permutation arrays for the ``r``/``(r, t)`` and
    ``t``/``(s, t)`` orders:

    ====================  ====================================
    bound positions       probe
    ====================  ====================================
    s                     ``start_s[id] .. start_s[id+1]``
    s, r                  binary search in ``sr_keys``
    s, r, t               ``sr`` range + binary search on t
    r                     ``start_r`` range over ``perm_r``
    r, t                  binary search in ``rt_keys``
    t                     ``start_t`` range over ``perm_t``
    s, t                  binary search in ``st_keys``
    ====================  ====================================

    Every structure is a flat ``array``/``memoryview``, so a generation
    is either *built* (process-local arrays) or *attached* (zero-copy
    views over a :mod:`multiprocessing.shared_memory` segment); all
    probing code is agnostic to which.
    """

    __slots__ = (
        "interner", "n", "version",
        "scol", "rcol", "tcol",
        "start_s", "start_r", "start_t",
        "perm_r", "perm_t",
        "sr_keys", "sr_starts", "rt_keys", "rt_starts",
        "st_keys", "st_starts",
        "_fact_memo", "_segment", "_views", "shared_name",
    )

    def __init__(self):
        # Lazily allocated flat memo (one slot per column offset): a
        # list index beats dict hashing on the hottest decode path.
        self._fact_memo: Optional[List[Optional[Fact]]] = None
        self._segment = None
        self._views: List = []
        self.shared_name: Optional[str] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, facts: Iterable[Fact],
              version: int = 0) -> "ColumnarGeneration":
        """Build a generation (and its interner) from an iterable of
        facts.  O(n log n): one sort per physical order."""
        gen = cls()
        interner = Interner()
        intern = interner.intern
        triples = [(intern(f[0]), intern(f[1]), intern(f[2]))
                   for f in facts]
        triples.sort()
        # The heap is a set: callers may feed raw fact lists with
        # repeats (the hash store dedupes on insert), so drop adjacent
        # duplicates from the sorted order.
        triples = [key for key, _ in itertools.groupby(triples)]
        n = len(triples)
        u = len(interner)
        gen.interner = interner
        gen.n = n
        gen.version = version

        scol = array("i", bytes(4 * n))
        rcol = array("i", bytes(4 * n))
        tcol = array("i", bytes(4 * n))
        for i, (s, r, t) in enumerate(triples):
            scol[i] = s
            rcol[i] = r
            tcol[i] = t
        del triples
        gen.scol, gen.rcol, gen.tcol = scol, rcol, tcol

        gen.start_s = cls._offsets(scol, u)
        # Secondary physical orders.  Packing (a, b, c) into one int
        # makes the sort key cheap; ids are dense so u bounds each
        # component and the packed key stays well inside 64 bits for
        # any realistic interner (overflow simply promotes to a long —
        # still correct, just slower).
        perm_r = sorted(range(n),
                        key=lambda i: (rcol[i] * u + tcol[i]) * u + scol[i])
        perm_t = sorted(range(n),
                        key=lambda i: (tcol[i] * u + scol[i]) * u + rcol[i])
        gen.perm_r = array("i", perm_r)
        gen.perm_t = array("i", perm_t)
        gen.start_r = cls._offsets_perm(rcol, perm_r, u)
        gen.start_t = cls._offsets_perm(tcol, perm_t, u)

        gen.sr_keys, gen.sr_starts = cls._pair_runs(
            ((scol[i], rcol[i]) for i in range(n)), u, n)
        gen.rt_keys, gen.rt_starts = cls._pair_runs(
            ((rcol[i], tcol[i]) for i in perm_r), u, n)
        gen.st_keys, gen.st_starts = cls._pair_runs(
            ((tcol[i], scol[i]) for i in perm_t), u, n)
        return gen

    @staticmethod
    def _offsets(col: Sequence[int], u: int) -> array:
        """CSR offsets over a sorted column: id → [start, end)."""
        counts = [0] * (u + 1)
        for value in col:
            counts[value + 1] += 1
        return array("q", itertools.accumulate(counts))

    @staticmethod
    def _offsets_perm(col: Sequence[int], perm: Sequence[int],
                      u: int) -> array:
        counts = [0] * (u + 1)
        for i in perm:
            counts[col[i] + 1] += 1
        return array("q", itertools.accumulate(counts))

    @staticmethod
    def _pair_runs(pairs: Iterator[Tuple[int, int]], u: int,
                   n: int) -> Tuple[array, array]:
        """Distinct (a, b) run keys and their start offsets, for a
        stream of pairs already sorted by (a, b)."""
        keys = array("q")
        starts = array("q")
        last = None
        for i, (a, b) in enumerate(pairs):
            packed = a * u + b
            if packed != last:
                keys.append(packed)
                starts.append(i)
                last = packed
        starts.append(n)
        return keys, starts

    # ------------------------------------------------------------------
    # Shared memory
    # ------------------------------------------------------------------
    _FIELDS = ("scol", "rcol", "tcol", "perm_r", "perm_t",
               "start_s", "start_r", "start_t",
               "sr_keys", "sr_starts", "rt_keys", "rt_starts",
               "st_keys", "st_starts")

    def share(self, name: Optional[str] = None) -> GenerationHandle:
        """Copy this generation into one shared-memory segment.

        Returns the :class:`GenerationHandle` other processes attach
        with.  The caller owns the segment: it stays mapped in this
        process until :func:`unlink_generation` (pool shutdown or
        generation compaction) removes it.
        """
        from multiprocessing import shared_memory

        encoded = [s.encode("utf-8") for s in self.interner.names]
        blob = b"".join(encoded)
        offsets = array("q", itertools.accumulate(
            itertools.chain((0,), map(len, encoded))))
        # Ids in byte-lexicographic name order: the attach side
        # resolves str→id by bisecting this permutation against the
        # blob instead of materializing a dict over the whole table.
        order = array("i", sorted(range(len(encoded)),
                                  key=encoded.__getitem__))
        parts: List[Tuple[str, str, bytes]] = [
            ("name_offsets", "q", offsets.tobytes()),
            ("names_blob", "B", blob),
            ("name_sort", "i", order.tobytes()),
        ]
        for field in self._FIELDS:
            arr: array = getattr(self, field)
            parts.append((field, arr.typecode, arr.tobytes()))

        layout: List[Tuple[str, str, int]] = []
        total = 0
        placed: List[Tuple[int, bytes]] = []
        for field, typecode, raw in parts:
            total = (total + 7) & ~7        # 8-byte alignment
            itemsize = array(typecode).itemsize
            layout.append((field, typecode, len(raw) // itemsize))
            placed.append((total, raw))
            total += len(raw)
        total = max(total, 1)

        if name is None:
            name = f"repro-gen-{os.getpid()}-{secrets.token_hex(4)}"
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=total)
        buf = segment.buf
        for (offset, raw) in placed:
            buf[offset:offset + len(raw)] = raw
        # The creating process keeps the mapping open (cheap — it is
        # the same physical pages) so the handle can be re-shipped to
        # respawned workers without rebuilding.
        self._segment = segment
        self.shared_name = segment.name
        return GenerationHandle(
            name=segment.name, n=self.n, n_names=len(self.interner),
            version=self.version, layout=tuple(layout), size=total)

    @classmethod
    def attach(cls, handle: GenerationHandle) -> "ColumnarGeneration":
        """Map a shared generation with zero copying of fact data.

        The columns, permutations, and CSR indexes are read directly
        from the segment as typed memoryviews, and the name table
        resolves both directions lazily (:class:`SharedInterner`), so
        attach cost is independent of heap size.
        """
        gen = cls()
        segment = attach_shared_memory(handle.name)
        gen._segment = segment
        gen.shared_name = handle.name
        gen.n = handle.n
        gen.version = handle.version
        buf = segment.buf
        offset = 0
        views: Dict[str, memoryview] = {}
        for field, typecode, count in handle.layout:
            offset = (offset + 7) & ~7
            itemsize = array(typecode).itemsize
            nbytes = count * itemsize
            view = memoryview(buf)[offset:offset + nbytes]
            if typecode != "B":
                view = view.cast(typecode)
            views[field] = view
            gen._views.append(view)
            offset += nbytes
        name_offsets = views["name_offsets"]
        blob = views["names_blob"]
        order = views.get("name_sort")
        if order is not None:
            gen.interner = SharedInterner(blob, name_offsets, order,
                                          handle.n_names)
        else:  # handle from a sharer without the sorted permutation
            gen.interner = Interner([
                str(bytes(blob[name_offsets[i]:name_offsets[i + 1]]),
                    "utf-8")
                for i in range(handle.n_names)
            ])
        for field in cls._FIELDS:
            setattr(gen, field, views[field])
        return gen

    def close(self) -> None:
        """Release an attached/shared segment mapping (not unlink)."""
        if self._segment is None:
            return
        for view in self._views:
            view.release()
        self._views = []
        # Built-then-shared generations still reference process-local
        # arrays for their fields; attached generations lose theirs
        # with the views, so drop the memo too.
        self._fact_memo = None
        try:
            self._segment.close()
        except (OSError, BufferError):  # pragma: no cover - defensive
            pass
        self._segment = None

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def fact_at(self, position: int) -> Fact:
        """The decoded fact at one column offset (memoized, so a fact
        is materialized at most once per process)."""
        memo = self._fact_memo
        if memo is None:
            memo = self._fact_memo = [None] * self.n
        fact = memo[position]
        if fact is None:
            names = self.interner.names
            fact = Fact(names[self.scol[position]],
                        names[self.rcol[position]],
                        names[self.tcol[position]])
            memo[position] = fact
        return fact

    def positions(self, spec: str,
                  ids: Tuple[int, ...]) -> Iterable[int]:
        """Column offsets of the facts matching one ground pattern.

        ``spec`` names the bound positions (``"s"``, ``"sr"``, …) and
        ``ids`` their interned values, in spec order.  Integer probes
        only — no strings, no tuple hashing.
        """
        n = self.n
        if spec == "":
            return range(n)
        if spec == "s":
            return range(self.start_s[ids[0]], self.start_s[ids[0] + 1])
        if spec == "sr":
            return self._pair_range(self.sr_keys, self.sr_starts,
                                    ids[0], ids[1])
        if spec == "r":
            lo, hi = self.start_r[ids[0]], self.start_r[ids[0] + 1]
            perm = self.perm_r
            return (perm[i] for i in range(lo, hi))
        if spec == "rt":
            run = self._pair_range(self.rt_keys, self.rt_starts,
                                   ids[0], ids[1])
            perm = self.perm_r
            return (perm[i] for i in run)
        if spec == "t":
            lo, hi = self.start_t[ids[0]], self.start_t[ids[0] + 1]
            perm = self.perm_t
            return (perm[i] for i in range(lo, hi))
        if spec == "st":
            # st runs live in the (t, s) physical order.
            run = self._pair_range(self.st_keys, self.st_starts,
                                   ids[1], ids[0])
            perm = self.perm_t
            return (perm[i] for i in run)
        if spec == "srt":
            position = self._find(ids[0], ids[1], ids[2])
            return () if position < 0 else (position,)
        raise KeyError(f"no index for position spec {spec!r}")

    def count(self, spec: str, ids: Tuple[int, ...]) -> int:
        """Exact match count for one ground pattern: pure index-length
        lookups, never a scan."""
        if spec == "":
            return self.n
        if spec == "s":
            return self.start_s[ids[0] + 1] - self.start_s[ids[0]]
        if spec == "r":
            return self.start_r[ids[0] + 1] - self.start_r[ids[0]]
        if spec == "t":
            return self.start_t[ids[0] + 1] - self.start_t[ids[0]]
        if spec == "sr":
            r = self._pair_range(self.sr_keys, self.sr_starts,
                                 ids[0], ids[1])
        elif spec == "rt":
            r = self._pair_range(self.rt_keys, self.rt_starts,
                                 ids[0], ids[1])
        elif spec == "st":
            r = self._pair_range(self.st_keys, self.st_starts,
                                 ids[1], ids[0])
        elif spec == "srt":
            return 1 if self._find(ids[0], ids[1], ids[2]) >= 0 else 0
        else:
            raise KeyError(f"no index for position spec {spec!r}")
        return len(r)

    def _pair_range(self, keys, starts, a: int, b: int) -> range:
        packed = a * len(self.interner) + b
        k = bisect_left(keys, packed)
        if k >= len(keys) or keys[k] != packed:
            return range(0)
        return range(starts[k], starts[k + 1])

    def _find(self, s: int, r: int, t: int) -> int:
        """Offset of the exact triple, or -1: binary search on t inside
        the (s, r) run (the natural order is sorted by (s, r, t))."""
        run = self._pair_range(self.sr_keys, self.sr_starts, s, r)
        lo, hi = run.start, run.stop
        tcol = self.tcol
        while lo < hi:
            mid = (lo + hi) // 2
            value = tcol[mid]
            if value < t:
                lo = mid + 1
            elif value > t:
                hi = mid
            else:
                return mid
        return -1

    def contains_fact(self, fact: Fact) -> bool:
        id_of = self.interner.id_of
        s = id_of(fact[0])
        if s is None:
            return False
        r = id_of(fact[1])
        if r is None:
            return False
        t = id_of(fact[2])
        if t is None:
            return False
        return self._find(s, r, t) >= 0

    def entity_occurrences(self, i: int) -> int:
        """How many position slots entity ``i`` fills across all facts
        (three O(1) offset subtractions)."""
        return ((self.start_s[i + 1] - self.start_s[i])
                + (self.start_r[i + 1] - self.start_r[i])
                + (self.start_t[i + 1] - self.start_t[i]))

    def relationship_occurrences(self, i: int) -> int:
        return self.start_r[i + 1] - self.start_r[i]

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[Fact]:
        for position in range(self.n):
            yield self.fact_at(position)

    def nbytes(self) -> int:
        """Total flat-array payload (what a shared segment holds)."""
        total = sum(len(getattr(self, f)) * (8 if getattr(
            self, f).typecode == "q" else 4) for f in self._FIELDS) \
            if not self._views else 0
        if self._views:
            return sum(v.nbytes for v in self._views)
        total += sum(len(s.encode("utf-8")) for s in self.interner.names)
        total += 8 * (len(self.interner) + 1)
        return total


class InternedFactStore(FactStore):
    """A :class:`FactStore` re-founded on one interned columnar
    generation plus a small mutable overlay.

    Reads merge three layers: the frozen generation (integer CSR
    probes), minus the tombstone set (facts discarded since the
    generation was built), plus the overlay (facts added since).  The
    overlay is an ordinary hash :class:`FactStore`, so mutation cost
    matches the classic store; the win is that the bulk of the heap is
    flat arrays — cheap to copy (the generation is shared, only the
    overlay duplicates), cheap to place in shared memory, and probed
    without tuple hashing.

    Invariant: the overlay and the (non-tombstoned) generation are
    disjoint, so merged iteration never deduplicates.
    """

    #: Class marker the query executor keys its integer-probe fast
    #: path on.
    interned = True
    #: :meth:`count_estimate` is exact for patterns without repeated
    #: variables (index length lookups, tombstone- and
    #: overlay-adjusted) — the planner drops its sampling fudge.
    count_estimate_exact = True

    def __init__(self, facts: Iterable[Fact] = ()):
        self._gen: Optional[ColumnarGeneration] = None
        self._overlay = FactStore()
        self._removed: Set[Fact] = set()
        self._removed_entity_refs: Dict[str, int] = {}
        self._removed_rel_refs: Dict[str, int] = {}
        self._removed_positions: Optional[Tuple[int, frozenset]] = None
        self._version = 0
        self._frozen = False
        for fact in facts:
            self.add(fact)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_facts(cls, facts: Iterable[Fact],
                   version: int = 0) -> "InternedFactStore":
        """A store whose entire content is one fresh generation."""
        store = cls()
        store._gen = ColumnarGeneration.build(facts, version=version)
        store._version = version
        return store

    @classmethod
    def from_generation(cls, generation: ColumnarGeneration
                        ) -> "InternedFactStore":
        """Wrap an existing (e.g. attached) generation; the overlay
        starts empty and the store version continues from the
        generation's recorded source version."""
        store = cls()
        store._gen = generation
        store._version = generation.version
        return store

    @classmethod
    def attach(cls, handle: GenerationHandle) -> "InternedFactStore":
        """Attach to a shared generation published by another process."""
        return cls.from_generation(ColumnarGeneration.attach(handle))

    def compact(self) -> "InternedFactStore":
        """Fold generation, tombstones, and overlay into a fresh
        single-generation store (same facts, same version)."""
        return InternedFactStore.from_facts(self, version=self._version)

    @property
    def generation(self) -> Optional[ColumnarGeneration]:
        return self._gen

    @property
    def overlay_size(self) -> int:
        """Facts outside the generation (compaction pressure gauge)."""
        return len(self._overlay) + len(self._removed)

    def close(self) -> None:
        """Release an attached generation's shared mapping."""
        if self._gen is not None:
            self._gen.close()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, fact: Fact) -> bool:
        if self._frozen:
            raise FrozenStoreError("cannot add to a frozen store")
        if self._removed and fact in self._removed:
            self._removed.discard(fact)
            for entity in fact:
                refs = self._removed_entity_refs
                refs[entity] -= 1
                if not refs[entity]:
                    del refs[entity]
            refs = self._removed_rel_refs
            refs[fact[1]] -= 1
            if not refs[fact[1]]:
                del refs[fact[1]]
            if _obs.ENABLED:
                _obs.TRACER.count("store.adds")
            self._version += 1
            return True
        if self._gen is not None and self._gen.contains_fact(fact):
            return False
        if self._overlay.add(fact):
            self._version += 1
            return True
        return False

    def discard(self, fact: Fact) -> bool:
        if self._frozen:
            raise FrozenStoreError("cannot discard from a frozen store")
        if self._overlay.discard(fact):
            self._version += 1
            return True
        if self._gen is None or fact in self._removed \
                or not self._gen.contains_fact(fact):
            return False
        self._removed.add(fact)
        for entity in fact:
            self._removed_entity_refs[entity] = \
                self._removed_entity_refs.get(entity, 0) + 1
        self._removed_rel_refs[fact[1]] = \
            self._removed_rel_refs.get(fact[1], 0) + 1
        if _obs.ENABLED:
            _obs.TRACER.count("store.removes")
        self._version += 1
        return True

    def clear(self) -> None:
        if self._frozen:
            raise FrozenStoreError("cannot clear a frozen store")
        version = self._version + 1
        self.__init__()
        self._version = version

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __contains__(self, fact: Fact) -> bool:
        if fact in self._overlay:
            return True
        if self._gen is None:
            return False
        if self._removed and fact in self._removed:
            return False
        return self._gen.contains_fact(fact)

    def __len__(self) -> int:
        base = self._gen.n if self._gen is not None else 0
        return base - len(self._removed) + len(self._overlay)

    def __iter__(self) -> Iterator[Fact]:
        if self._gen is not None:
            removed = self._removed
            if removed:
                for position in range(self._gen.n):
                    fact = self._gen.fact_at(position)
                    if fact not in removed:
                        yield fact
            else:
                yield from self._gen
        yield from self._overlay

    def __bool__(self) -> bool:
        return len(self) > 0

    def copy(self) -> "InternedFactStore":
        """An independent mutable copy: the generation (immutable) is
        shared, only the overlay layers duplicate — this is what makes
        snapshot publication and closure seeding cheap at heap scale."""
        new = InternedFactStore.__new__(InternedFactStore)
        new._gen = self._gen
        new._overlay = self._overlay.copy()
        new._removed = set(self._removed)
        new._removed_entity_refs = dict(self._removed_entity_refs)
        new._removed_rel_refs = dict(self._removed_rel_refs)
        new._removed_positions = self._removed_positions
        new._version = self._version
        new._frozen = False
        return new

    def entities(self) -> Set[str]:
        result = self._overlay.entities()
        gen = self._gen
        if gen is not None:
            removed = self._removed_entity_refs
            for i, name in enumerate(gen.interner.names):
                if gen.entity_occurrences(i) > removed.get(name, 0):
                    result.add(name)
        return result

    def relationships(self) -> Set[str]:
        result = self._overlay.relationships()
        gen = self._gen
        if gen is not None:
            removed = self._removed_rel_refs
            start_r = gen.start_r
            names = gen.interner.names
            for i in range(len(names)):
                count = start_r[i + 1] - start_r[i]
                if count and count > removed.get(names[i], 0):
                    result.add(names[i])
        return result

    def has_entity(self, entity: str) -> bool:
        if self._overlay.has_entity(entity):
            return True
        gen = self._gen
        if gen is None:
            return False
        i = gen.interner.id_of(entity)
        if i is None:
            return False
        return gen.entity_occurrences(i) \
            > self._removed_entity_refs.get(entity, 0)

    def has_relationship(self, relationship: str) -> bool:
        if self._overlay.has_relationship(relationship):
            return True
        gen = self._gen
        if gen is None:
            return False
        i = gen.interner.id_of(relationship)
        if i is None:
            return False
        return gen.relationship_occurrences(i) \
            > self._removed_rel_refs.get(relationship, 0)

    # ------------------------------------------------------------------
    # Template matching (integer probes)
    # ------------------------------------------------------------------
    def _spec_ids(self, s: Optional[str], r: Optional[str],
                  t: Optional[str]):
        """Resolve ground components to (spec, interned ids) — or
        ``None`` when some constant was never interned, meaning the
        generation cannot contain a match."""
        id_of = self._gen.interner.id_of
        spec = ""
        ids: List[int] = []
        for letter, value in (("s", s), ("r", r), ("t", t)):
            if value is None:
                continue
            i = id_of(value)
            if i is None:
                return None
            spec += letter
            ids.append(i)
        return spec, tuple(ids)

    def _gen_facts(self, s: Optional[str], r: Optional[str],
                   t: Optional[str]) -> Iterator[Fact]:
        """Generation-side candidates for raw ground positions."""
        gen = self._gen
        resolved = self._spec_ids(s, r, t)
        if resolved is None:
            return
        spec, ids = resolved
        fact_at = gen.fact_at
        removed = self._removed
        if removed:
            for position in gen.positions(spec, ids):
                fact = fact_at(position)
                if fact not in removed:
                    yield fact
        else:
            for position in gen.positions(spec, ids):
                yield fact_at(position)

    def _candidates(self, pattern: Template) -> Iterable[Fact]:
        s = pattern.source if isinstance(pattern.source, str) else None
        r = (pattern.relationship
             if isinstance(pattern.relationship, str) else None)
        t = pattern.target if isinstance(pattern.target, str) else None
        if _obs.ENABLED:
            _obs.TRACER.count("store.lookups")
        return self._merged(s, r, t)

    def lookup(self, source: Optional[str] = None,
               relationship: Optional[str] = None,
               target: Optional[str] = None) -> Iterable[Fact]:
        if _obs.ENABLED:
            _obs.TRACER.count("store.lookups")
        return self._merged(source, relationship, target)

    def _merged(self, s: Optional[str], r: Optional[str],
                t: Optional[str]) -> Iterable[Fact]:
        overlay = self._overlay
        if self._gen is None:
            return overlay.lookup(s, r, t) if len(overlay) else ()
        if not len(overlay):
            return self._gen_facts(s, r, t)
        return itertools.chain(self._gen_facts(s, r, t),
                               overlay.lookup(s, r, t))

    def lookup_many(self, spec: str,
                    templates: Sequence[Template]) -> List[List[Fact]]:
        """Batched ground-position lookup: one result list per
        template, all sharing the same bound-position ``spec``.

        This is the integer-domain batch surface the compiled query
        executor probes: constants are interned once, the CSR index is
        resolved once, and each key costs one offset-range probe —
        facts decode (memoized) only when they reach the output.
        """
        gen = self._gen
        overlay = self._overlay
        overlay_live = len(overlay) > 0
        positions = [_POSITION[letter] for letter in spec]
        results: List[List[Fact]] = []
        if gen is None:
            if not overlay_live:
                return [[] for _ in templates]
            return [
                list(overlay.lookup(
                    template[0] if 0 in positions else None,
                    template[1] if 1 in positions else None,
                    template[2] if 2 in positions else None))
                for template in templates]
        id_of = gen.interner.id_of
        fact_at = gen.fact_at
        removed = self._removed
        for template in templates:
            ids: List[int] = []
            miss = False
            for p in positions:
                i = id_of(template[p])
                if i is None:
                    miss = True
                    break
                ids.append(i)
            if miss:
                matches: List[Fact] = []
            elif removed:
                matches = [
                    fact for fact in map(
                        fact_at, gen.positions(spec, tuple(ids)))
                    if fact not in removed]
            else:
                matches = [fact_at(position)
                           for position in gen.positions(
                               spec, tuple(ids))]
            if overlay_live:
                matches.extend(overlay.lookup(
                    template[0] if 0 in positions else None,
                    template[1] if 1 in positions else None,
                    template[2] if 2 in positions else None))
            results.append(matches)
        return results

    # ------------------------------------------------------------------
    # Integer-domain batch surfaces (id-native query execution)
    # ------------------------------------------------------------------
    def id_codec(self) -> IdCodec:
        """A fresh per-execution codec over this store's generation."""
        return IdCodec(self._gen.interner)

    def removed_positions(self) -> frozenset:
        """Generation offsets of the tombstoned facts, cached per store
        version.  Every tombstone is generation-contained by invariant
        (:meth:`discard` only tombstones facts the generation holds),
        so the resolution never misses."""
        cached = self._removed_positions
        if cached is not None and cached[0] == self._version:
            return cached[1]
        gen = self._gen
        id_of = gen.interner.id_of
        find = gen._find  # noqa: SLF001
        positions = frozenset(
            find(id_of(f[0]), id_of(f[1]), id_of(f[2]))
            for f in self._removed)
        self._removed_positions = (self._version, positions)
        return positions

    def lookup_many_ids(self, spec: str,
                        keys: Sequence[Tuple[Optional[int], ...]],
                        positions: Optional[Sequence[int]] = None,
                        checks: Sequence[Tuple[int, int]] = ()
                        ) -> List[list]:
        """Generation-side batched integer probe: one result list per
        key, no :class:`Fact` objects, no strings.

        ``keys`` are id tuples in ``spec`` order.  A key component that
        is ``None`` (a constant the generation never interned) or
        outside the base id range (a scratch id) makes that key's list
        empty — the overlay and virtual layers are the caller's to
        merge.  With ``positions`` each match is the tuple of those
        column components (the executor's new-variable extensions;
        ``[]`` turns the probe into a pure existence filter); without
        it, full ``(s, r, t)`` id triples.  ``checks`` are column-index
        pairs that must hold equal ids (repeated unbound variables —
        id equality is name equality within one interner space).
        Tombstones are filtered by generation offset.
        """
        gen = self._gen
        base = len(gen.interner)
        removed = self.removed_positions() if self._removed else None
        cols = (gen.scol, gen.rcol, gen.tcol)
        out_cols = None if positions is None else [
            cols[p] for p in positions]
        results: List[list] = []
        for ids in keys:
            miss = False
            for i in ids:
                if i is None or i >= base:
                    miss = True
                    break
            if miss:
                results.append([])
                continue
            offsets: Iterable[int] = gen.positions(spec, ids)
            if removed:
                offsets = [p for p in offsets if p not in removed]
            if checks:
                offsets = [
                    p for p in offsets
                    if all(cols[i][p] == cols[j][p] for i, j in checks)]
            if out_cols is None:
                scol, rcol, tcol = cols
                results.append(
                    [(scol[p], rcol[p], tcol[p]) for p in offsets])
            elif len(out_cols) == 1:
                col = out_cols[0]
                results.append([(col[p],) for p in offsets])
            elif out_cols:
                results.append([tuple(col[p] for col in out_cols)
                                for p in offsets])
            else:
                # Pure filter: only existence matters.
                hit = False
                for _p in offsets:
                    hit = True
                    break
                results.append([()] if hit else [])
        return results

    def match_many_ids(self, patterns: Sequence[Tuple[Optional[int],
                                                      Optional[int],
                                                      Optional[int]]]
                       ) -> List[List[Tuple[int, int, int]]]:
        """Batched id-domain template match: each pattern is an
        ``(s, r, t)`` triple of ids-or-``None`` (``None`` = unbound);
        returns the matching generation triples per pattern, tombstone
        filtered.  Unlike :meth:`lookup_many_ids` the bound-position
        spec may differ per pattern."""
        gen = self._gen
        base = len(gen.interner)
        removed = self.removed_positions() if self._removed else None
        scol, rcol, tcol = gen.scol, gen.rcol, gen.tcol
        results: List[List[Tuple[int, int, int]]] = []
        for pattern in patterns:
            spec = ""
            ids: List[int] = []
            miss = False
            for letter, value in zip("srt", pattern):
                if value is None:
                    continue
                if value >= base:
                    miss = True
                    break
                spec += letter
                ids.append(value)
            if miss:
                results.append([])
                continue
            offsets: Iterable[int] = gen.positions(spec, tuple(ids))
            if removed:
                offsets = (p for p in offsets if p not in removed)
            results.append(
                [(scol[p], rcol[p], tcol[p]) for p in offsets])
        return results

    def entity_id_domain(self, encode) -> List[int]:
        """The active entity domain as codec ids: generation entities
        that survive the tombstone layer (base ids, no name decoding)
        plus overlay entities encoded through ``encode``, deduplicated
        against the generation's contribution.  Same *set* as
        :meth:`entities`, in id space (order may differ)."""
        gen = self._gen
        out: List[int] = []
        live: List[int] = []
        if gen is not None:
            removed: Dict[int, int] = {}
            if self._removed_entity_refs:
                id_of = gen.interner.id_of
                for name, count in self._removed_entity_refs.items():
                    removed[id_of(name)] = count
            occurrences = gen.entity_occurrences
            if removed:
                live = [i for i in range(len(gen.interner))
                        if occurrences(i) > removed.get(i, 0)]
            else:
                live = [i for i in range(len(gen.interner))
                        if occurrences(i)]
            out.extend(live)
        if len(self._overlay):
            base = len(gen.interner) if gen is not None else 0
            included = set(live)
            for name in self._overlay.entities():
                i = encode(name)
                if i >= base or i not in included:
                    out.append(i)
        return out

    def index_for(self, spec: str) -> "_CSRIndexView":
        """A read handle over one access pattern, API-compatible with
        the hash store's index dicts (``.get(key, default)``) but
        backed by integer CSR probes."""
        if spec not in ("s", "r", "t", "sr", "st", "rt"):
            raise KeyError(f"no index for position spec {spec!r}")
        return _CSRIndexView(self, spec)

    def count_estimate(self, pattern: Template,
                       binding=None) -> int:
        """Exact match count for patterns without repeated variables.

        Index-length lookups on the generation (O(1) per probe),
        adjusted by the (small) tombstone and overlay layers.  Patterns
        with repeated variables keep the classic upper-bound semantics.
        """
        if binding:
            pattern = pattern.substitute(binding)
        variables = pattern.variables()
        if len(variables) != len(set(variables)):
            # Upper bound, as in the hash store.
            candidates = self._candidates(pattern)
            return sum(1 for _ in candidates)
        s = pattern.source if isinstance(pattern.source, str) else None
        r = (pattern.relationship
             if isinstance(pattern.relationship, str) else None)
        t = pattern.target if isinstance(pattern.target, str) else None
        total = 0
        if self._gen is not None:
            resolved = self._spec_ids(s, r, t)
            if resolved is not None:
                total += self._gen.count(*resolved)
                if self._removed:
                    total -= sum(
                        1 for fact in self._removed
                        if (s is None or fact[0] == s)
                        and (r is None or fact[1] == r)
                        and (t is None or fact[2] == t))
        if len(self._overlay):
            total += self._overlay.count_estimate(pattern)
        return total


class _CSRIndexView:
    """Mapping-style view over one interned access pattern.

    Supports exactly the protocol the compiled executor uses on the
    hash store's index dicts: ``handle.get(key, default)`` where key is
    an entity (single-position specs) or an entity pair.
    """

    __slots__ = ("_store", "_spec", "_positions")

    def __init__(self, store: InternedFactStore, spec: str):
        self._store = store
        self._spec = spec
        self._positions = tuple(_POSITION[letter] for letter in spec)

    def get(self, key, default=None):
        if len(self._spec) == 1:
            components: Tuple[Optional[str], ...] = (key,)
        else:
            components = tuple(key)
        args: List[Optional[str]] = [None, None, None]
        for p, value in zip(self._positions, components):
            args[p] = value
        store = self._store
        matches = list(store._merged(*args))  # noqa: SLF001
        return matches if matches else default

    def __contains__(self, key) -> bool:
        return bool(self.get(key))
