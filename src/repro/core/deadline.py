"""Cooperative per-request deadlines.

The serving layer (:mod:`repro.serve`) promises bounded latency: a
request that cannot finish in time must stop consuming the process
instead of running to completion.  Python threads cannot be interrupted
from outside, so cancellation is *cooperative*: the long loops of the
system — the query evaluator's binding enumeration and the closure
engines' fixpoint rounds — call :func:`check` at natural checkpoints,
and :func:`check` raises :class:`~repro.core.errors.DeadlineExceeded`
once the active deadline has passed.

The mechanism follows the zero-overhead pattern of :mod:`repro.obs`:
one module-level flag (:data:`ACTIVE`) counts threads currently inside
a deadline scope, and every checkpoint guards itself with::

    from ..core import deadline as _deadline
    ...
    if _deadline.ACTIVE:
        _deadline.check()

so that with no deadline anywhere in the process (the default — every
single-user, single-thread workload) the cost per checkpoint is one
module-attribute load and a falsy branch.  The deadline itself is
thread-local: scopes on different threads never see each other, and
nested scopes tighten (never loosen) the effective deadline.

Example::

    from repro.core import deadline
    from repro.core.errors import DeadlineExceeded

    with deadline.deadline_scope(0.050):     # 50 ms budget
        try:
            db.query("(x, ≺, y) and (y, ≺, z)")
        except DeadlineExceeded:
            ...  # the evaluator stopped at a checkpoint
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from .errors import DeadlineExceeded

#: Fast-path flag: the number of threads currently inside a deadline
#: scope.  Checkpoints test this and nothing else when it is zero.
ACTIVE = 0

_lock = threading.Lock()
_local = threading.local()


@contextmanager
def deadline_scope(seconds: Optional[float] = None, *,
                   at: Optional[float] = None) -> Iterator[None]:
    """Run the body under a deadline.

    Args:
        seconds: budget from now (``time.monotonic()``).  ``None``
            (with ``at`` also ``None``) makes the scope a no-op, so
            callers can pass an optional deadline straight through.
            A non-positive budget is already expired: the first
            checkpoint raises.
        at: absolute ``time.monotonic()`` timestamp instead of a
            relative budget (used by the service, which computes one
            admission deadline per request).

    Scopes nest by tightening: an inner scope can only shorten the
    effective deadline, never extend it past the enclosing scope's.
    """
    global ACTIVE
    if seconds is None and at is None:
        yield
        return
    expires = at if at is not None else time.monotonic() + seconds
    previous = getattr(_local, "expires", None)
    if previous is not None:
        expires = min(previous, expires)
    _local.expires = expires
    with _lock:
        ACTIVE += 1
    try:
        yield
    finally:
        with _lock:
            ACTIVE -= 1
        _local.expires = previous


def check() -> None:
    """Raise :class:`DeadlineExceeded` if this thread's deadline passed.

    A no-op on threads with no active scope.  Call sites should guard
    with ``if deadline.ACTIVE:`` so the disabled path stays free.
    """
    expires = getattr(_local, "expires", None)
    if expires is not None and time.monotonic() >= expires:
        raise DeadlineExceeded(
            f"deadline exceeded ({time.monotonic() - expires:.3f}s past)")


def remaining() -> Optional[float]:
    """Seconds left on this thread's deadline, or ``None`` if no scope
    is active.  May be negative once the deadline has passed."""
    expires = getattr(_local, "expires", None)
    if expires is None:
        return None
    return expires - time.monotonic()


def expired() -> bool:
    """True when this thread has an active deadline that has passed."""
    expires = getattr(_local, "expires", None)
    return expires is not None and time.monotonic() >= expires
