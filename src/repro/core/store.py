"""The fact heap: an indexed in-memory store of triplets.

The paper deliberately leaves storage strategy open (§6.2); this module
provides the obvious main-memory organization — a set of facts with
hash indexes on every access pattern — so that template matching (the
primitive behind queries, browsing, and rule evaluation) is fast
regardless of which positions are bound.

All seven non-trivial access patterns are served:

====================  =========================
bound positions       index used
====================  =========================
s                     ``_by_s``
r                     ``_by_r``
t                     ``_by_t``
s, r                  ``_by_sr``
s, t                  ``_by_st``
r, t                  ``_by_rt``
s, r, t               membership test
====================  =========================

Example::

    from repro.core import Fact, FactStore, template, var

    store = FactStore([Fact("JOHN", "EARNS", "$25000")])
    matches = store.match(template("JOHN", var("r"), var("y")))
    assert [f.target for f in matches] == ["$25000"]
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..obs import tracer as _obs
from .errors import FrozenStoreError
from .facts import Binding, Fact, Template, Variable


def seed_store(base: Iterable["Fact"]) -> "FactStore":
    """The mutable store a closure engine grows from ``base``.

    Type-preserving: seeding from an existing store — hash or interned
    columnar — duplicates it through its own :meth:`FactStore.copy`,
    which for an interned base shares the frozen generation instead of
    materializing one ``Fact`` object per row.  Arbitrary iterables
    still build a hash store.
    """
    if isinstance(base, FactStore):
        return base.copy()
    return FactStore(base)


class FactStore:
    """A mutable, fully indexed heap of facts.

    The store is *loose* in the paper's sense: any contradiction-free
    collection of facts qualifies; nothing resembling a schema is
    enforced here.  (Contradiction checking lives in
    :mod:`repro.rules.integrity`, because it needs the closure.)
    """

    def __init__(self, facts: Iterable[Fact] = ()):
        self._facts: Set[Fact] = set()
        self._by_s: Dict[str, Set[Fact]] = defaultdict(set)
        self._by_r: Dict[str, Set[Fact]] = defaultdict(set)
        self._by_t: Dict[str, Set[Fact]] = defaultdict(set)
        self._by_sr: Dict[Tuple[str, str], Set[Fact]] = defaultdict(set)
        self._by_st: Dict[Tuple[str, str], Set[Fact]] = defaultdict(set)
        self._by_rt: Dict[Tuple[str, str], Set[Fact]] = defaultdict(set)
        # Reference counts so entity bookkeeping survives deletions.
        self._entity_refs: Dict[str, int] = defaultdict(int)
        self._relationship_refs: Dict[str, int] = defaultdict(int)
        # Monotone mutation counter: bumped on every successful add,
        # discard, or clear — never reset.  Result caches key on it so
        # a moved version invalidates every entry for free.
        self._version: int = 0
        # Frozen stores reject mutation (published service snapshots).
        self._frozen: bool = False
        for f in facts:
            self.add(f)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, fact: Fact) -> bool:
        """Insert a fact.  Returns True if it was not already present."""
        if self._frozen:
            raise FrozenStoreError("cannot add to a frozen store")
        if fact in self._facts:
            return False
        if _obs.ENABLED:
            _obs.TRACER.count("store.adds")
        self._version += 1
        self._facts.add(fact)
        s, r, t = fact
        self._by_s[s].add(fact)
        self._by_r[r].add(fact)
        self._by_t[t].add(fact)
        self._by_sr[s, r].add(fact)
        self._by_st[s, t].add(fact)
        self._by_rt[r, t].add(fact)
        for entity in fact:
            self._entity_refs[entity] += 1
        self._relationship_refs[r] += 1
        return True

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Insert many facts; returns the number actually new."""
        return sum(1 for f in facts if self.add(f))

    def discard(self, fact: Fact) -> bool:
        """Remove a fact if present.  Returns True if it was present."""
        if self._frozen:
            raise FrozenStoreError("cannot discard from a frozen store")
        if fact not in self._facts:
            return False
        if _obs.ENABLED:
            _obs.TRACER.count("store.removes")
        self._version += 1
        self._facts.remove(fact)
        s, r, t = fact
        self._by_s[s].discard(fact)
        self._by_r[r].discard(fact)
        self._by_t[t].discard(fact)
        self._by_sr[s, r].discard(fact)
        self._by_st[s, t].discard(fact)
        self._by_rt[r, t].discard(fact)
        for entity in fact:
            self._entity_refs[entity] -= 1
            if not self._entity_refs[entity]:
                del self._entity_refs[entity]
        self._relationship_refs[r] -= 1
        if not self._relationship_refs[r]:
            del self._relationship_refs[r]
        return True

    def clear(self) -> None:
        """Remove every fact.  The version keeps moving forward."""
        if self._frozen:
            raise FrozenStoreError("cannot clear a frozen store")
        version = self._version + 1
        self.__init__()
        self._version = version

    def freeze(self) -> "FactStore":
        """Make this store permanently read-only (returns ``self``).

        Any subsequent :meth:`add` / :meth:`discard` / :meth:`clear`
        raises :class:`~repro.core.errors.FrozenStoreError`.  The
        serving layer freezes the stores of every published snapshot so
        concurrent readers can share them without locks — an accidental
        write fails instead of tearing another reader's view.
        :meth:`copy` always produces an *unfrozen* copy.
        """
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` has been called."""
        return self._frozen

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __contains__(self, fact: Fact) -> bool:
        return fact in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __bool__(self) -> bool:
        return bool(self._facts)

    @property
    def version(self) -> int:
        """Monotone mutation counter (adds, discards, and clears)."""
        return self._version

    def copy(self) -> "FactStore":
        """An independent copy of this store.

        The six index dicts and the two refcount maps are duplicated
        directly instead of re-inserting every fact through
        :meth:`add` — the closure engine seeds each delta with a copy,
        so this is on the closure hot path.  The copy starts at the
        same version as the original.
        """
        new = FactStore.__new__(FactStore)
        new._facts = set(self._facts)
        new._by_s = defaultdict(
            set, ((k, set(v)) for k, v in self._by_s.items() if v))
        new._by_r = defaultdict(
            set, ((k, set(v)) for k, v in self._by_r.items() if v))
        new._by_t = defaultdict(
            set, ((k, set(v)) for k, v in self._by_t.items() if v))
        new._by_sr = defaultdict(
            set, ((k, set(v)) for k, v in self._by_sr.items() if v))
        new._by_st = defaultdict(
            set, ((k, set(v)) for k, v in self._by_st.items() if v))
        new._by_rt = defaultdict(
            set, ((k, set(v)) for k, v in self._by_rt.items() if v))
        new._entity_refs = defaultdict(int, self._entity_refs)
        new._relationship_refs = defaultdict(int, self._relationship_refs)
        new._version = self._version
        new._frozen = False
        return new

    def entities(self) -> Set[str]:
        """The active domain: every entity occurring in any position."""
        return set(self._entity_refs)

    def relationships(self) -> Set[str]:
        """Every entity occurring in relationship position."""
        return set(self._relationship_refs)

    def has_entity(self, entity: str) -> bool:
        """True if the entity occurs anywhere in the store.

        Probing uses this to report "no such database entities" (§5.2).
        """
        return entity in self._entity_refs

    def has_relationship(self, relationship: str) -> bool:
        """True if any stored fact uses ``relationship``."""
        return relationship in self._relationship_refs

    # ------------------------------------------------------------------
    # Template matching
    # ------------------------------------------------------------------
    def _candidates(self, pattern: Template) -> Iterable[Fact]:
        """The smallest indexed candidate set for a pattern.

        ``pattern`` components are entities or variables; repeated
        variables are handled by the caller's post-filter.
        """
        s = pattern.source if isinstance(pattern.source, str) else None
        r = (pattern.relationship
             if isinstance(pattern.relationship, str) else None)
        t = pattern.target if isinstance(pattern.target, str) else None

        if _obs.ENABLED:
            _obs.TRACER.count("store.lookups")

        if s is not None and r is not None and t is not None:
            f = Fact(s, r, t)
            return (f,) if f in self._facts else ()
        if s is not None and r is not None:
            return self._by_sr.get((s, r), ())
        if s is not None and t is not None:
            return self._by_st.get((s, t), ())
        if r is not None and t is not None:
            return self._by_rt.get((r, t), ())
        if s is not None:
            return self._by_s.get(s, ())
        if r is not None:
            return self._by_r.get(r, ())
        if t is not None:
            return self._by_t.get(t, ())
        return self._facts

    def lookup(self, source: Optional[str] = None,
               relationship: Optional[str] = None,
               target: Optional[str] = None) -> Iterable[Fact]:
        """The indexed candidate set for raw ground positions.

        Each argument is an entity or ``None`` (wildcard).  This is the
        template-free twin of :meth:`match`, used by the compiled rule
        joins (:mod:`repro.rules.dispatch`) which track bindings in
        slots instead of :class:`~repro.core.facts.Binding` dicts.
        """
        if _obs.ENABLED:
            _obs.TRACER.count("store.lookups")
        if source is not None:
            if relationship is not None:
                if target is not None:
                    f = Fact(source, relationship, target)
                    return (f,) if f in self._facts else ()
                return self._by_sr.get((source, relationship), ())
            if target is not None:
                return self._by_st.get((source, target), ())
            return self._by_s.get(source, ())
        if relationship is not None:
            if target is not None:
                return self._by_rt.get((relationship, target), ())
            return self._by_r.get(relationship, ())
        if target is not None:
            return self._by_t.get(target, ())
        return self._facts

    def index_for(self, spec: str) -> Dict:
        """Direct read handle on one positional hash index.

        ``spec`` names the ground positions: ``"s"``, ``"r"``, ``"t"``,
        ``"sr"``, ``"st"``, or ``"rt"``.  The returned mapping is the
        live index (keys are entities or entity pairs, values are fact
        sets) — callers must treat it as read-only and use ``.get`` so
        the ``defaultdict`` is never grown by a miss.  The compiled
        query executor (:mod:`repro.query.exec`) resolves the handle
        once per join operator and then probes it once per *distinct*
        binding instead of once per row.
        """
        try:
            return {"s": self._by_s, "r": self._by_r, "t": self._by_t,
                    "sr": self._by_sr, "st": self._by_st,
                    "rt": self._by_rt}[spec]
        except KeyError:
            raise KeyError(f"no index for position spec {spec!r}") from None

    def match_many(self, patterns: Sequence[Template]) -> List[List[Fact]]:
        """Batched :meth:`match`: one result list per input pattern.

        The batch surface the set-at-a-time executor builds on; the
        store-level implementation simply loops (each pattern already
        hits the best index), but presenting the batch at once keeps
        the calling convention uniform with the virtual registry's
        batched matching.
        """
        return [list(self.match(pattern)) for pattern in patterns]

    def match(self, pattern: Template,
              binding: Optional[Binding] = None) -> Iterator[Fact]:
        """All stored facts matching a template (under a binding).

        The template's variables already bound in ``binding`` act as
        constants; repeated variables must match equal entities.
        """
        if binding:
            pattern = pattern.substitute(binding)
        # Fast path: no repeated variables means the candidate set is
        # exactly the answer.
        variables = pattern.variables()
        if len(variables) == len(set(variables)):
            yield from self._candidates(pattern)
            return
        for candidate in self._candidates(pattern):
            if pattern.match(candidate) is not None:
                yield candidate

    def solutions(self, pattern: Template,
                  binding: Optional[Binding] = None) -> Iterator[Binding]:
        """All extended bindings under which ``pattern`` matches."""
        base = binding or {}
        substituted = pattern.substitute(base) if base else pattern
        if _obs.ENABLED:
            yield from self._solutions_traced(substituted, base)
            return
        for candidate in self._candidates(substituted):
            extended = substituted.match(candidate, base)
            if extended is not None:
                yield extended

    def _solutions_traced(self, substituted: Template,
                          base: Binding) -> Iterator[Binding]:
        """:meth:`solutions` with per-pattern-shape call/hit counters.

        Shapes key on which positions are ground (``"sr"``, ``"t"``,
        ``"open"``, …) so the counters reveal which indexes carry the
        workload without exploding in cardinality.
        """
        shape = _obs.pattern_shape(substituted)
        tracer = _obs.TRACER
        tracer.count(f"store.solutions.calls.{shape}")
        hits = 0
        try:
            for candidate in self._candidates(substituted):
                extended = substituted.match(candidate, base)
                if extended is not None:
                    hits += 1
                    yield extended
        finally:
            # Counted in a finally so early-terminated scans (any(),
            # first-match) still report the hits they produced.
            if hits:
                tracer.count(f"store.solutions.hits.{shape}", hits)

    def count_estimate(self, pattern: Template,
                       binding: Optional[Binding] = None) -> int:
        """Upper bound on the number of matches, from index sizes.

        Used by the query planner to order conjuncts by selectivity;
        exact for patterns without repeated variables.
        """
        if binding:
            pattern = pattern.substitute(binding)
        candidates = self._candidates(pattern)
        try:
            return len(candidates)  # type: ignore[arg-type]
        except TypeError:
            return sum(1 for _ in candidates)

    def facts_mentioning(self, entity: str) -> Set[Fact]:
        """Every fact in which ``entity`` occurs, in any position.

        This is the engine behind the ``try(e)`` operator (§6.1).
        """
        v = Variable("__any_a__")
        w = Variable("__any_b__")
        result: Set[Fact] = set()
        for pattern in (Template(entity, v, w), Template(v, entity, w),
                        Template(v, w, entity)):
            result.update(self.match(pattern))
        return result
