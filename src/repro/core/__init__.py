"""Core fact model: entities, facts, templates, and the fact heap.

Everything above this layer manipulates the same three shapes: `Fact`
triplets over string entities (:mod:`repro.core.facts`), `Template`
patterns with variables, and the fully indexed :class:`FactStore`
(:mod:`repro.core.store`).  The package also holds the cross-cutting
utilities the upper layers share: the special-entity vocabulary
(:mod:`repro.core.entities`), the typed error hierarchy
(:mod:`repro.core.errors`), the version-keyed LRU result cache
(:mod:`repro.core.cache`), and cooperative per-request deadlines
(:mod:`repro.core.deadline`).

Example::

    from repro.core import Fact, FactStore, template, var

    store = FactStore([Fact("JOHN", "EARNS", "$25000")])
    pattern = template("JOHN", var("r"), var("y"))
    assert [f.target for f in store.match(pattern)] == ["$25000"]
"""

from .entities import (
    BOTTOM,
    CLASS_RELATIONSHIP,
    CONTRA,
    COMPOSITION_SEPARATOR,
    EQ,
    GE,
    GT,
    INDIVIDUAL_RELATIONSHIP,
    INV,
    ISA,
    LE,
    LT,
    MATH_RELATIONSHIPS,
    MEMBER,
    NE,
    SPECIAL_RELATIONSHIPS,
    SYN,
    TOP,
    VIRTUAL_ENTITIES,
    compose_relationship,
    composition_length,
    is_composed,
    is_math_relationship,
    is_numeric,
    is_special_relationship,
    numeric_value,
    validate_entity,
)
from .errors import (
    EntityError,
    InfiniteRelationError,
    IntegrityError,
    ParseError,
    QueryError,
    ReproError,
    RuleError,
    StorageError,
    TemplateError,
    UnknownRuleError,
)
from .facts import Fact, Template, Variable, fact, template, var
from .store import FactStore

__all__ = [
    "BOTTOM", "CLASS_RELATIONSHIP", "CONTRA", "COMPOSITION_SEPARATOR", "EQ",
    "GE", "GT", "INDIVIDUAL_RELATIONSHIP", "INV", "ISA", "LE", "LT",
    "MATH_RELATIONSHIPS", "MEMBER", "NE", "SPECIAL_RELATIONSHIPS", "SYN",
    "TOP", "VIRTUAL_ENTITIES", "compose_relationship", "composition_length",
    "is_composed", "is_math_relationship", "is_numeric",
    "is_special_relationship", "numeric_value", "validate_entity",
    "EntityError", "InfiniteRelationError", "IntegrityError", "ParseError",
    "QueryError", "ReproError", "RuleError", "StorageError", "TemplateError",
    "UnknownRuleError", "Fact", "Template", "Variable", "fact", "template",
    "var", "FactStore",
]
