"""Core fact model: entities, facts, templates, and the fact heap."""

from .entities import (
    BOTTOM,
    CLASS_RELATIONSHIP,
    CONTRA,
    COMPOSITION_SEPARATOR,
    EQ,
    GE,
    GT,
    INDIVIDUAL_RELATIONSHIP,
    INV,
    ISA,
    LE,
    LT,
    MATH_RELATIONSHIPS,
    MEMBER,
    NE,
    SPECIAL_RELATIONSHIPS,
    SYN,
    TOP,
    VIRTUAL_ENTITIES,
    compose_relationship,
    composition_length,
    is_composed,
    is_math_relationship,
    is_numeric,
    is_special_relationship,
    numeric_value,
    validate_entity,
)
from .errors import (
    EntityError,
    InfiniteRelationError,
    IntegrityError,
    ParseError,
    QueryError,
    ReproError,
    RuleError,
    StorageError,
    TemplateError,
    UnknownRuleError,
)
from .facts import Fact, Template, Variable, fact, template, var
from .store import FactStore

__all__ = [
    "BOTTOM", "CLASS_RELATIONSHIP", "CONTRA", "COMPOSITION_SEPARATOR", "EQ",
    "GE", "GT", "INDIVIDUAL_RELATIONSHIP", "INV", "ISA", "LE", "LT",
    "MATH_RELATIONSHIPS", "MEMBER", "NE", "SPECIAL_RELATIONSHIPS", "SYN",
    "TOP", "VIRTUAL_ENTITIES", "compose_relationship", "composition_length",
    "is_composed", "is_math_relationship", "is_numeric",
    "is_special_relationship", "numeric_value", "validate_entity",
    "EntityError", "InfiniteRelationError", "IntegrityError", "ParseError",
    "QueryError", "ReproError", "RuleError", "StorageError", "TemplateError",
    "UnknownRuleError", "Fact", "Template", "Variable", "fact", "template",
    "var", "FactStore",
]
