"""A small LRU cache for versioned query/navigation results.

The paper's principal retrieval mode is browsing (§5): the user asks
for the same neighborhoods and the same queries again and again while
the database barely changes.  Because :class:`~repro.core.store.FactStore`
carries a monotone mutation version, a result computed against version
*v* stays valid exactly until the version moves — so cache keys simply
embed the version and invalidation is free: stale entries are never
*hit* again, and the LRU discipline ages them out.

Hit/miss totals are exposed as attributes (for tests that run with
tracing off), as the ``cache.hits`` / ``cache.misses`` obs counters,
and as the same-named cross-process metrics counters when
:mod:`repro.obs.metrics` collection is enabled.

Version keys survive storage changes, not just snapshots.  Interned
columnar stores (:mod:`repro.core.interned`) preserve the version of
whatever they were compacted from — ``Database.compact_store()`` and
replica generation attach both carry the source store's version — so a
result computed before compaction is still *hit* after it: the
representation changed, the state (and therefore the key) did not.
Replicas continue the same version line through delta replay, which is
what lets the pool share one warm cache discipline across processes.

The cache is thread-safe: the serving layer (:mod:`repro.serve`) shares
one instance across every published snapshot so warm entries survive
snapshot publication (an unchanged version means unchanged keys), and
concurrent readers hit it simultaneously.  A single lock guards the
``OrderedDict`` — the critical sections are a few dict operations, far
cheaper than recomputing any cached result.

Example::

    from repro.core.cache import LRUCache

    cache = LRUCache(maxsize=2)
    cache.put(("query", "(x, ≺, y)", 7), frozenset({("A", "B")}))
    cache.get(("query", "(x, ≺, y)", 7))   # hit
    cache.get(("query", "(x, ≺, y)", 8))   # miss: version moved
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional

from ..obs import metrics as _metrics
from ..obs import tracer as _obs

#: Sentinel distinguishing "missing" from a cached falsy value.
_MISSING = object()


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    Values are returned exactly as stored; callers that hand cached
    objects to the outside world must treat them as read-only (or copy
    on the way out, as the query layer does with its result sets).
    """

    def __init__(self, maxsize: int = 512):
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value for ``key`` (marking it recently used), or
        ``default``."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                missed = True
            else:
                self._data.move_to_end(key)
                self.hits += 1
                missed = False
        if missed:
            if _obs.ENABLED:
                _obs.TRACER.count("cache.misses")
            if _metrics.ENABLED:
                _metrics.METRICS.count("cache.misses")
            return default
        if _obs.ENABLED:
            _obs.TRACER.count("cache.hits")
        if _metrics.ENABLED:
            _metrics.METRICS.count("cache.hits")
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``key`` → ``value``, evicting the oldest entries when
        the cache is over capacity."""
        evicted = 0
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted:
            if _obs.ENABLED:
                _obs.TRACER.count("cache.evictions", evicted)
            if _metrics.ENABLED:
                _metrics.METRICS.count("cache.evictions", evicted)

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def stats(self) -> dict:
        """Hit/miss/eviction totals plus current size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._data),
            "maxsize": self.maxsize,
        }

    def __repr__(self) -> str:
        return (f"LRUCache({len(self._data)}/{self.maxsize},"
                f" {self.hits} hits, {self.misses} misses)")
