"""A small LRU cache for versioned query/navigation results.

The paper's principal retrieval mode is browsing (§5): the user asks
for the same neighborhoods and the same queries again and again while
the database barely changes.  Because :class:`~repro.core.store.FactStore`
carries a monotone mutation version, a result computed against version
*v* stays valid exactly until the version moves — so cache keys simply
embed the version and invalidation is free: stale entries are never
*hit* again, and the LRU discipline ages them out.

Hit/miss totals are exposed both as attributes (for tests that run with
tracing off) and as the ``cache.hits`` / ``cache.misses`` obs counters.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional

from ..obs import tracer as _obs

#: Sentinel distinguishing "missing" from a cached falsy value.
_MISSING = object()


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    Values are returned exactly as stored; callers that hand cached
    objects to the outside world must treat them as read-only (or copy
    on the way out, as the query layer does with its result sets).
    """

    def __init__(self, maxsize: int = 512):
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value for ``key`` (marking it recently used), or
        ``default``."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            if _obs.ENABLED:
                _obs.TRACER.count("cache.misses")
            return default
        self._data.move_to_end(key)
        self.hits += 1
        if _obs.ENABLED:
            _obs.TRACER.count("cache.hits")
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``key`` → ``value``, evicting the oldest entries when
        the cache is over capacity."""
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1
            if _obs.ENABLED:
                _obs.TRACER.count("cache.evictions")

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def stats(self) -> dict:
        """Hit/miss/eviction totals plus current size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._data),
            "maxsize": self.maxsize,
        }

    def __repr__(self) -> str:
        return (f"LRUCache({len(self._data)}/{self.maxsize},"
                f" {self.hits} hits, {self.misses} misses)")
