"""A small LRU cache for versioned query/navigation results.

The paper's principal retrieval mode is browsing (§5): the user asks
for the same neighborhoods and the same queries again and again while
the database barely changes.  Because :class:`~repro.core.store.FactStore`
carries a monotone mutation version, a result computed against version
*v* stays valid exactly until the version moves — so cache keys simply
embed the version and invalidation is free: stale entries are never
*hit* again, and the LRU discipline ages them out.

Hit/miss totals are exposed as attributes (for tests that run with
tracing off), as the ``cache.hits`` / ``cache.misses`` obs counters,
and as the same-named cross-process metrics counters when
:mod:`repro.obs.metrics` collection is enabled.

Version keys survive storage changes, not just snapshots.  Interned
columnar stores (:mod:`repro.core.interned`) preserve the version of
whatever they were compacted from — ``Database.compact_store()`` and
replica generation attach both carry the source store's version — so a
result computed before compaction is still *hit* after it: the
representation changed, the state (and therefore the key) did not.
Replicas continue the same version line through delta replay, which is
what lets the pool share one warm cache discipline across processes.

The cache is thread-safe: the serving layer (:mod:`repro.serve`) shares
one instance across every published snapshot so warm entries survive
snapshot publication (an unchanged version means unchanged keys), and
concurrent readers hit it simultaneously.  A single lock guards the
``OrderedDict`` — the critical sections are a few dict operations, far
cheaper than recomputing any cached result.

Example::

    from repro.core.cache import LRUCache

    cache = LRUCache(maxsize=2)
    cache.put(("query", "(x, ≺, y)", 7), frozenset({("A", "B")}))
    cache.get(("query", "(x, ≺, y)", 7))   # hit
    cache.get(("query", "(x, ≺, y)", 8))   # miss: version moved
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional

from . import deadline as _deadline
from ..obs import metrics as _metrics
from ..obs import tracer as _obs

#: Sentinel distinguishing "missing" from a cached falsy value.
_MISSING = object()

#: How long a single-flight follower sleeps per wait slice — short
#: enough that a query deadline still fires promptly mid-wait.
_FLIGHT_WAIT_SLICE = 0.05


class _Flight:
    """One in-progress computation other callers can wait on."""

    __slots__ = ("event", "value")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = _MISSING


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    Values are returned exactly as stored; callers that hand cached
    objects to the outside world must treat them as read-only (or copy
    on the way out, as the query layer does with its result sets).
    """

    def __init__(self, maxsize: int = 512):
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.coalesced = 0
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._flights: dict = {}
        self._lock = threading.Lock()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value for ``key`` (marking it recently used), or
        ``default``."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                missed = True
            else:
                self._data.move_to_end(key)
                self.hits += 1
                missed = False
        if missed:
            if _obs.ENABLED:
                _obs.TRACER.count("cache.misses")
            if _metrics.ENABLED:
                _metrics.METRICS.count("cache.misses")
            return default
        if _obs.ENABLED:
            _obs.TRACER.count("cache.hits")
        if _metrics.ENABLED:
            _metrics.METRICS.count("cache.hits")
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``key`` → ``value``, evicting the oldest entries when
        the cache is over capacity."""
        evicted = 0
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted:
            if _obs.ENABLED:
                _obs.TRACER.count("cache.evictions", evicted)
            if _metrics.ENABLED:
                _metrics.METRICS.count("cache.evictions", evicted)

    def get_or_compute(self, key: Hashable, compute) -> Any:
        """The cached value for ``key``, computing it on a miss with
        single-flight stampede protection.

        Exactly one caller (the *leader*) runs ``compute`` per key;
        concurrent callers for the same key wait for its result instead
        of recomputing — each such save is counted as ``coalesced``
        (also the ``cache.coalesced`` obs/metrics counter).  Waiters
        sleep in short slices so an active query deadline still fires.
        Errors are never cached: the leader's exception propagates to
        the leader alone, and its waiters fall back to computing for
        themselves.
        """
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is not _MISSING:
                self._data.move_to_end(key)
                self.hits += 1
            else:
                flight = self._flights.get(key)
                if flight is None:
                    flight = self._flights[key] = _Flight()
                    self.misses += 1
                    leader = True
                else:
                    leader = False
        if value is not _MISSING:
            if _obs.ENABLED:
                _obs.TRACER.count("cache.hits")
            if _metrics.ENABLED:
                _metrics.METRICS.count("cache.hits")
            return value
        if leader:
            if _obs.ENABLED:
                _obs.TRACER.count("cache.misses")
            if _metrics.ENABLED:
                _metrics.METRICS.count("cache.misses")
            try:
                value = compute()
            except BaseException:
                with self._lock:
                    self._flights.pop(key, None)
                flight.event.set()
                raise
            self.put(key, value)
            with self._lock:
                self._flights.pop(key, None)
            flight.value = value
            flight.event.set()
            return value
        # Follower: wait out the leader's computation.
        while not flight.event.wait(_FLIGHT_WAIT_SLICE):
            if _deadline.ACTIVE:
                _deadline.check()
        value = flight.value
        if value is not _MISSING:
            with self._lock:
                self.coalesced += 1
            if _obs.ENABLED:
                _obs.TRACER.count("cache.coalesced")
            if _metrics.ENABLED:
                _metrics.METRICS.count("cache.coalesced")
            return value
        # The leader failed; its error was not cached — compute for
        # ourselves (a second failure propagates here, uncoalesced).
        with self._lock:
            self.misses += 1
        if _obs.ENABLED:
            _obs.TRACER.count("cache.misses")
        if _metrics.ENABLED:
            _metrics.METRICS.count("cache.misses")
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def stats(self) -> dict:
        """Hit/miss/eviction totals plus current size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "coalesced": self.coalesced,
            "size": len(self._data),
            "maxsize": self.maxsize,
        }

    def __repr__(self) -> str:
        return (f"LRUCache({len(self._data)}/{self.maxsize},"
                f" {self.hits} hits, {self.misses} misses)")
