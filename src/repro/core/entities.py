"""Entities: the basic units of data (paper §2.1).

An entity is a distinctly named unit of the modelled environment —
``JOHN``, ``PERSON``, ``$25000``.  We represent entities as plain
(interned) Python strings; this module defines the *special entities*
the paper relies on, plus helpers for numeric entities and validation.

Special entities (paper sections in parentheses):

========  =======================  ==========================================
constant  glyph                    meaning
========  =======================  ==========================================
ISA       ``≺``                    generalization (§2.3)
MEMBER    ``∈``                    membership (§2.3)
SYN       ``≈``                    synonym (§3.3)
INV       ``↔``                    inversion (§3.4)
CONTRA    ``⊥``                    contradiction (§3.5)
TOP       ``Δ``                    most abstract entity (§2.3)
BOTTOM    ``∇``                    most specified entity (§2.3)
LT/GT/..  ``<  >  =  ≠  ≤  ≥``     mathematical facts (§3.6)
========  =======================  ==========================================

Example::

    from repro.core.entities import MEMBER, is_numeric, numeric_value

    assert MEMBER == "∈"
    assert is_numeric("$25000") and numeric_value("$25000") == 25000
"""

from __future__ import annotations

from typing import Optional, Union

from .errors import EntityError

# The paper's special relationship entities.
ISA = "≺"
MEMBER = "∈"
SYN = "≈"
INV = "↔"
CONTRA = "⊥"
TOP = "Δ"
BOTTOM = "∇"
LT = "<"
GT = ">"
EQ = "="
NE = "≠"
LE = "≤"
GE = "≥"

#: Mathematical comparator entities (§3.6) — all virtual, never stored.
MATH_RELATIONSHIPS = frozenset({LT, GT, EQ, NE, LE, GE})

#: Every special relationship entity.  The standard inference rules for
#: *ordinary* relationships (inheritance through ``≺``/``∈``) must not
#: fire when the relationship slot holds one of these; the special
#: entities have their own dedicated rules.
SPECIAL_RELATIONSHIPS = frozenset(
    {ISA, MEMBER, SYN, INV, CONTRA}) | MATH_RELATIONSHIPS

#: Entities that only exist virtually at the top/bottom of the
#: generalization hierarchy.
VIRTUAL_ENTITIES = frozenset({TOP, BOTTOM})

#: Classification classes for relationships (§2.2): declaring
#: ``(r, ∈, INDIVIDUAL_RELATIONSHIP)`` or ``(r, ∈, CLASS_RELATIONSHIP)``
#: puts ``r`` into R_i or R_c.  Undeclared relationships default to R_i.
INDIVIDUAL_RELATIONSHIP = "INDIVIDUAL-RELATIONSHIP"
CLASS_RELATIONSHIP = "CLASS-RELATIONSHIP"

#: Separator used to build composed (path) relationship entities, as in
#: the paper's ``ENROLLED-IN.CS100.TAUGHT-BY`` (§3.7).
COMPOSITION_SEPARATOR = "."

Entity = str
Number = Union[int, float]


def validate_entity(name: object) -> Entity:
    """Validate and return an entity name.

    Entities must be non-empty strings with no surrounding whitespace
    and no embedded newlines (they are written to one-line journals).

    Raises:
        EntityError: if ``name`` is not a valid entity.
    """
    if not isinstance(name, str):
        raise EntityError(f"entity must be a string, got {type(name).__name__}")
    if not name:
        raise EntityError("entity must be a non-empty string")
    if name != name.strip():
        raise EntityError(f"entity has surrounding whitespace: {name!r}")
    if "\n" in name or "\r" in name:
        raise EntityError(f"entity contains a newline: {name!r}")
    return name


def is_special_relationship(entity: Entity) -> bool:
    """True if ``entity`` is one of the paper's special relationship
    entities (``≺ ∈ ≈ ↔ ⊥`` or a mathematical comparator)."""
    return entity in SPECIAL_RELATIONSHIPS


def is_math_relationship(entity: Entity) -> bool:
    """True if ``entity`` is a mathematical comparator (§3.6)."""
    return entity in MATH_RELATIONSHIPS


def is_composed(entity: Entity) -> bool:
    """True if ``entity`` is a composed (path) relationship (§3.7).

    Composed relationships are built by the composition engine with
    :data:`COMPOSITION_SEPARATOR`; primitive entities never contain it.
    """
    return COMPOSITION_SEPARATOR in entity


def numeric_value(entity: Entity) -> Optional[Number]:
    """The numeric value of an entity, or ``None`` if non-numeric.

    The paper's examples write money as ``$25000``; we accept an
    optional leading ``$`` and thousands separators, e.g.::

        >>> numeric_value("$25,000")
        25000
        >>> numeric_value("2.6")
        2.6
        >>> numeric_value("JOHN") is None
        True
    """
    text = entity
    if text.startswith("$"):
        text = text[1:]
    text = text.replace(",", "")
    if not text:
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        value = float(text)
    except ValueError:
        return None
    # Reject non-finite spellings such as "inf"/"nan": they are names,
    # not numbers, in a database of entities.
    if value != value or value in (float("inf"), float("-inf")):
        return None
    return value


def is_numeric(entity: Entity) -> bool:
    """True if the entity denotes a number (§3.6)."""
    return numeric_value(entity) is not None


def compose_relationship(r1: Entity, intermediate: Entity, r2: Entity) -> Entity:
    """Build the composed relationship entity for a path (§3.7).

    The paper names the composition of ``(TOM, ENROLLED-IN, CS100)``
    and ``(CS100, TAUGHT-BY, HARRY)`` as ``ENROLLED-IN.CS100.TAUGHT-BY``:
    the two relationships joined around the intermediate entity.
    """
    return COMPOSITION_SEPARATOR.join((r1, intermediate, r2))


def composition_length(relationship: Entity) -> int:
    """Number of primitive facts chained in a (possibly composed)
    relationship: 1 for a primitive relationship, 2 for ``r1.t.r2``,
    and so on."""
    if not is_composed(relationship):
        return 1
    # A composed name has the form r1.t1.r2.t2.r3... : k primitive
    # relationships interleaved with k-1 intermediate entities, i.e.
    # 2k-1 dot-separated segments.
    segments = relationship.split(COMPOSITION_SEPARATOR)
    return (len(segments) + 1) // 2
