"""Exception hierarchy for the loosely structured database.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at the API boundary.

Example::

    from repro import Database
    from repro.core.errors import ParseError, ReproError

    try:
        Database().query("(not a template")
    except ReproError as exc:
        assert isinstance(exc, ParseError)
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class EntityError(ReproError):
    """An entity name is malformed (empty, non-string, bad whitespace)."""


class TemplateError(ReproError):
    """A template or fact is structurally invalid."""


class RuleError(ReproError):
    """A rule is malformed (e.g. unsafe head variables)."""


class QueryError(ReproError):
    """A query is malformed or cannot be evaluated safely."""


class ParseError(QueryError):
    """The textual query syntax could not be parsed."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class InfiniteRelationError(QueryError):
    """A virtual (computed) relation was asked to enumerate an
    unbounded set of facts — e.g. ``(x, <, y)`` with both sides free and
    no active-domain restriction possible."""


class IntegrityError(ReproError):
    """The closure of the database contains a contradiction."""

    def __init__(self, message: str, violations=()):
        super().__init__(message)
        self.violations = tuple(violations)


class StorageError(ReproError):
    """The persistence layer encountered a malformed journal/snapshot."""


class UnknownRuleError(RuleError):
    """``include``/``exclude`` named a rule not present in the registry."""


class FrozenStoreError(ReproError):
    """A mutation was attempted on a frozen (read-only) fact store.

    Published service snapshots freeze their stores so that a stray
    write through a reader's reference fails loudly instead of tearing
    the snapshot other readers are using.
    """


class ServiceError(ReproError):
    """Base class for errors raised by the concurrent serving layer
    (:mod:`repro.serve`)."""


class DeadlineExceeded(ServiceError):
    """A request ran past its deadline and was cooperatively cancelled.

    Raised from the deadline checkpoints inside the query evaluator and
    the closure loops (see :mod:`repro.core.deadline`), or when a write
    ticket was not applied within the caller's deadline.  For writes the
    mutation may still be applied by the writer after the caller has
    given up; the ticket records the eventual outcome.
    """


class Overloaded(ServiceError):
    """The service's bounded admission queue is full (backpressure).

    Clients should back off and retry; the request was rejected before
    doing any work.
    """


class ServiceClosed(ServiceError):
    """The service has shut down; no further requests are accepted."""


class ReplicaError(ServiceError):
    """A replica worker process failed (died mid-request, could not be
    bootstrapped, or its pipe broke).  The pool retries the request on
    the primary's published snapshot where possible, so callers mostly
    see this only when the whole pool is unavailable."""


#: Error classes that may travel across a process or socket boundary by
#: name (the JSON-lines protocol and the replica pipes).  Anything not
#: listed degrades to :class:`ServiceError` on the receiving side.
WIRE_ERROR_NAMES = (
    "ReproError", "EntityError", "TemplateError", "RuleError",
    "QueryError", "ParseError", "InfiniteRelationError",
    "IntegrityError", "StorageError", "UnknownRuleError",
    "FrozenStoreError", "ServiceError", "DeadlineExceeded",
    "Overloaded", "ServiceClosed", "ReplicaError",
)


def error_class(name: str) -> type:
    """The error class for a wire name (:data:`WIRE_ERROR_NAMES`),
    defaulting to :class:`ServiceError` for anything unrecognized."""
    if name in WIRE_ERROR_NAMES:
        return globals()[name]
    return ServiceError
