"""Exception hierarchy for the loosely structured database.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class EntityError(ReproError):
    """An entity name is malformed (empty, non-string, bad whitespace)."""


class TemplateError(ReproError):
    """A template or fact is structurally invalid."""


class RuleError(ReproError):
    """A rule is malformed (e.g. unsafe head variables)."""


class QueryError(ReproError):
    """A query is malformed or cannot be evaluated safely."""


class ParseError(QueryError):
    """The textual query syntax could not be parsed."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class InfiniteRelationError(QueryError):
    """A virtual (computed) relation was asked to enumerate an
    unbounded set of facts — e.g. ``(x, <, y)`` with both sides free and
    no active-domain restriction possible."""


class IntegrityError(ReproError):
    """The closure of the database contains a contradiction."""

    def __init__(self, message: str, violations=()):
        super().__init__(message)
        self.violations = tuple(violations)


class StorageError(ReproError):
    """The persistence layer encountered a malformed journal/snapshot."""


class UnknownRuleError(RuleError):
    """``include``/``exclude`` named a rule not present in the registry."""
