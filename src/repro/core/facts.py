"""Facts and templates (paper §2.1, §2.6, §2.7).

A *fact* is a named pair of entities: the triplet
``(source, relationship, target)``.  A *template* is a fact in which
any position may hold a :class:`Variable`; templates are the atoms of
both rules and queries.

Example::

    from repro.core.facts import fact, template, var

    t = template(var("x"), "EARNS", var("y"))
    binding = t.match(fact("JOHN", "EARNS", "$25000"))
    assert binding[var("x")] == "JOHN"
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, NamedTuple, Optional, Tuple, Union

from .entities import Entity, validate_entity
from .errors import TemplateError

#: Names of the three positions of a fact, in order (§2.1).
POSITIONS = ("source", "relationship", "target")


@dataclass(frozen=True)
class Variable:
    """An entity variable (paper §2.4: "facts that include variables
    are called templates").

    Two variables with the same name are the same variable.  The
    reserved name ``*`` is never used: the parser expands each ``*``
    into a fresh anonymous variable (§4.1).
    """

    name: str

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise TemplateError("variable name must be a non-empty string")

    def __repr__(self) -> str:
        return f"?{self.name}"


def var(name: str) -> Variable:
    """Convenience constructor: ``var("x")`` == ``Variable("x")``."""
    return Variable(name)


Component = Union[Entity, Variable]
Binding = Dict[Variable, Entity]


class Fact(NamedTuple):
    """A ground triplet ``(source, relationship, target)`` — the basic
    unit of information (§2.1)."""

    source: Entity
    relationship: Entity
    target: Entity

    def __repr__(self) -> str:
        return f"({self.source}, {self.relationship}, {self.target})"


def fact(source: str, relationship: str, target: str) -> Fact:
    """Build a validated :class:`Fact`."""
    return Fact(validate_entity(source), validate_entity(relationship),
                validate_entity(target))


class Template(NamedTuple):
    """A triplet whose positions may hold entities or variables (§2.4).

    Templates act as queries: presented to a database, a template
    evaluates to all facts in the closure that match its non-variable
    components (§2.7).
    """

    source: Component
    relationship: Component
    target: Component

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def variables(self) -> Tuple[Variable, ...]:
        """All variables, in position order, duplicates included."""
        return tuple(c for c in self if isinstance(c, Variable))

    def variable_set(self) -> frozenset:
        """The set of distinct variables in this template."""
        return frozenset(self.variables())

    def is_ground(self) -> bool:
        """True if the template has no variables (it is a fact)."""
        return not any(isinstance(c, Variable) for c in self)

    def to_fact(self) -> Fact:
        """Convert a ground template to a :class:`Fact`.

        Raises:
            TemplateError: if the template still has variables.
        """
        if not self.is_ground():
            raise TemplateError(f"template is not ground: {self!r}")
        return Fact(self.source, self.relationship, self.target)

    # ------------------------------------------------------------------
    # Matching and substitution
    # ------------------------------------------------------------------
    def substitute(self, binding: Binding) -> "Template":
        """Apply a binding, replacing bound variables by entities."""
        components = [
            binding.get(c, c) if isinstance(c, Variable) else c for c in self
        ]
        return Template(*components)

    def match(self, fact_: Fact,
              binding: Optional[Binding] = None) -> Optional[Binding]:
        """Match this template against a ground fact.

        Returns the (extended) binding on success, ``None`` on failure.
        Repeated variables must match equal entities, so the paper's
        self-citation template ``(x, CITES, x)`` behaves correctly.
        The input binding is never mutated.
        """
        result: Binding = dict(binding) if binding else {}
        for component, entity in zip(self, fact_):
            if isinstance(component, Variable):
                bound = result.get(component)
                if bound is None:
                    result[component] = entity
                elif bound != entity:
                    return None
            elif component != entity:
                return None
        return result

    def rename(self, mapping: Dict[Variable, Variable]) -> "Template":
        """Rename variables (used to standardize rules apart)."""
        components = [
            mapping.get(c, c) if isinstance(c, Variable) else c for c in self
        ]
        return Template(*components)

    def __repr__(self) -> str:
        parts = ", ".join(
            repr(c) if isinstance(c, Variable) else str(c) for c in self)
        return f"({parts})"


def template(source: Component, relationship: Component,
             target: Component) -> Template:
    """Build a validated :class:`Template`.

    Entity components are validated; :class:`Variable` components pass
    through unchanged.
    """
    components = []
    for component in (source, relationship, target):
        if isinstance(component, Variable):
            components.append(component)
        else:
            components.append(validate_entity(component))
    return Template(*components)


def iter_components(item: Union[Fact, Template]) -> Iterator[Tuple[str, Component]]:
    """Yield ``(position_name, component)`` pairs for a fact/template."""
    for name, component in zip(POSITIONS, item):
        yield name, component
