"""``python -m repro`` launches the interactive browser shell.

Subcommands pass through to :mod:`repro.shell`::

    python -m repro music                  # browse a bundled dataset
    python -m repro /path/to/durable-db    # browse a durable directory
    python -m repro serve music            # host it over TCP (repro.serve)
    python -m repro connect localhost:7474 # remote shell against a server
"""

from .shell import main

if __name__ == "__main__":
    raise SystemExit(main())
