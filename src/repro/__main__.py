"""``python -m repro`` launches the interactive browser shell."""

from .shell import main

if __name__ == "__main__":
    raise SystemExit(main())
