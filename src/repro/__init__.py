"""repro — a loosely structured database with browsing.

A complete implementation of the architecture of:

    Amihai Motro, "Browsing in a Loosely Structured Database",
    SIGMOD 1984.

The database is a heap of ``(source, relationship, target)`` facts plus
inference/integrity rules; retrieval is a predicate-logic query
language, *navigation* (iterated neighborhood templates), and *probing*
(queries that retract automatically on failure).

Quickstart::

    from repro import Database

    db = Database()
    db.add("JOHN", "∈", "EMPLOYEE")
    db.add("EMPLOYEE", "EARNS", "SALARY")
    assert db.query("(JOHN, EARNS, y)") == {("SALARY",)}
    print(db.navigate("(JOHN, *, *)").render())
"""

from .core.entities import (
    BOTTOM,
    CONTRA,
    EQ,
    GE,
    GT,
    INV,
    ISA,
    LE,
    LT,
    MEMBER,
    NE,
    SYN,
    TOP,
)
from .core.errors import (
    DeadlineExceeded,
    EntityError,
    FrozenStoreError,
    IntegrityError,
    Overloaded,
    ParseError,
    QueryError,
    ReproError,
    RuleError,
    ServiceClosed,
    ServiceError,
    StorageError,
    TemplateError,
)
from .core.facts import Fact, Template, Variable, fact, template, var
from .core.store import FactStore
from .db import AXIOM_FACTS, Database
from .query.ast import And, Atom, Exists, ForAll, Or, Query, atom, exists, forall
from .query.parser import parse_formula, parse_query, parse_template
from .rules.builtin import STANDARD_RULES
from .rules.rule import Rule
from .serve import DatabaseService
from .storage.session import open_database

__version__ = "1.0.0"

__all__ = [
    "BOTTOM", "CONTRA", "EQ", "GE", "GT", "INV", "ISA", "LE", "LT",
    "MEMBER", "NE", "SYN", "TOP", "DeadlineExceeded", "EntityError",
    "FrozenStoreError", "IntegrityError", "Overloaded", "ParseError",
    "QueryError", "ReproError", "RuleError", "ServiceClosed",
    "ServiceError", "StorageError", "TemplateError", "Fact", "Template",
    "Variable", "fact", "template", "var", "FactStore", "AXIOM_FACTS",
    "Database", "DatabaseService", "And", "Atom", "Exists", "ForAll", "Or",
    "Query", "atom", "exists", "forall", "parse_formula", "parse_query",
    "parse_template", "STANDARD_RULES", "Rule", "open_database",
    "__version__",
]
