"""The concurrent serving layer: many readers, one writer, snapshots.

The paper positions browsing as an *interactive, multi-user* retrieval
method but defers all system concerns to future work (§6).  This
package is that serving tier: :class:`DatabaseService` wraps a
:class:`~repro.db.Database` with reader-writer concurrency —

* **reads** run lock-free against an immutable, frozen, copy-on-write
  snapshot published by the writer (:meth:`repro.db.Database.snapshot`),
  under optional per-request deadlines with cooperative cancellation
  (:mod:`repro.core.deadline`);
* **writes** funnel through a bounded admission queue into a single
  writer thread that coalesces queued mutations into batches, applies
  them to the master database, journals the batch when a
  :class:`~repro.storage.session.DurableSession` is attached, and
  atomically publishes the next snapshot;
* **overload** surfaces as the typed
  :class:`~repro.core.errors.Overloaded` /
  :class:`~repro.core.errors.DeadlineExceeded` hierarchy instead of
  unbounded queueing.

:mod:`repro.serve.net` adds a JSON-lines TCP server and client so the
service can sit behind a socket (``python -m repro.shell serve music``
/ ``python -m repro.shell connect localhost:7474``).

:mod:`repro.serve.pool` scales reads past the GIL:
:class:`ReplicaPool` forks N worker *processes*, each holding a full
database replica kept current by the delta batches the writer thread
publishes (coalesced net fact mutations plus rule/limit controls, in
order, over pipes), applied through the database's incremental
maintenance rather than full recomputation.  Reads route round-robin
with inflight accounting; read-your-writes is preserved by routing
ticket-bearing reads only to replicas that have applied the ticket's
version (primary fallback otherwise); crashed workers respawn and
re-bootstrap automatically.  ``python -m repro.shell serve music
--workers 4`` puts a pool behind the TCP server.

Example::

    from repro import Database
    from repro.serve import DatabaseService

    db = Database()
    db.add("JOHN", "∈", "EMPLOYEE")
    with DatabaseService(db) as service:
        service.add("EMPLOYEE", "EARNS", "SALARY")   # via the writer
        service.query("(JOHN, EARNS, y)")            # {("SALARY",)}
"""

from ..core.errors import (
    DeadlineExceeded,
    Overloaded,
    ServiceClosed,
    ServiceError,
)
from ..core.errors import ReplicaError
from .pool import ReplicaPool
from .replica import Delta
from .service import DatabaseService, WriteTicket

__all__ = [
    "DatabaseService", "WriteTicket", "ReplicaPool", "Delta",
    "ServiceError", "Overloaded", "DeadlineExceeded", "ServiceClosed",
    "ReplicaError",
]
