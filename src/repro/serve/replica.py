"""Replica workers: process-local read replicas fed by a delta log.

CPython's GIL caps the thread-based service at roughly one core of
aggregate read throughput, however many reader threads connect.  This
module is the worker half of the standard log-shipping answer: the
primary keeps its single writer thread, and each *worker process*
holds a full :class:`~repro.db.Database` replica that it keeps current
by applying ordered :class:`Delta` records — coalesced net fact
mutations plus rule/limit control operations — shipped over a pipe.
Deltas ride the database's existing incremental maintenance
(:meth:`repro.db.Database.apply_delta`: insertion extension and
Delete/Rederive), so the replica hot path never recomputes the closure
from scratch.

The parent half — spawning, routing, read-your-writes, respawn — lives
in :mod:`repro.serve.pool`.  This module is deliberately
parent-agnostic: :func:`replica_main` speaks only the pipe protocol,
which keeps it importable under the ``spawn`` start method and easy to
drive from tests without any pool at all.

Pipe protocol (parent → worker)::

    ("delta", Delta)                     apply, then ack
    ("generation", GenerationBootstrap)  re-attach to a newly compacted
                                         shared generation, then ack
                                         ("applied", version)
    ("read", rid, op, payload, seconds)  evaluate under a deadline
    ("read", rid, op, payload, seconds, trace)
                                         same, traced: ``trace`` is a
                                         TraceContext wire dict
    ("metrics_request",)                 ship a metrics snapshot
    ("ping",)                            liveness probe
    ("crash",)                           hard-exit (failover tests)
    ("stop",)                            clean shutdown

and worker → parent::

    ("ready", version)                   bootstrap finished
    ("applied", version)                 delta ack
    ("reattached", version)              generation re-attach ack (the
                                         old segments are now unmapped)
    ("result", rid, ok, value, version)  read outcome (value is the
                                         result, or (error_name, text))
    ("result", rid, ok, value, version, extra)
                                         same, with telemetry: ``extra``
                                         is ``{"spans": [...]}`` and/or
                                         ``{"slow": record}``
    ("metrics", version, snapshot)       registry snapshot (heartbeat)
    ("pong", version)

Both sides accept the shorter historical forms, so a parent and worker
from adjacent versions interoperate.  ``version`` is always the
replication sequence number — the primary's count of published
batches — never a store-internal counter, so a replica bootstrapped
from disk and one bootstrapped from a shipped state agree on where
they stand.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..browse import retraction as _retraction
from ..core import deadline as _deadline
from ..core.errors import ReproError, ServiceError
from ..core.facts import Fact
from ..db import Database
from ..obs import metrics as _metrics
from ..obs.context import TraceContext
from ..obs.slowlog import build_record, plan_summary
from ..query import exec as _qexec
from ..rules.registry import RuleRegistry
from ..rules.rule import Rule

__all__ = [
    "Delta", "BootstrapState", "GenerationBootstrap",
    "capture_bootstrap", "build_replica",
    "build_replica_from_generation", "bootstrap_from_directory",
    "apply_delta_message", "replica_main",
]


@dataclass(frozen=True)
class Delta:
    """One published batch, as shipped to replicas.

    ``adds`` and ``removes`` are the batch's *net* effect on the base
    heap (a fact added and removed inside one batch appears in
    neither), so applying them in any order within the record is
    equivalent to replaying the batch.  ``controls`` carries the
    non-fact operations in application order: ``("limit", n)``,
    ``("include", name_or_rule)``, ``("exclude", name)``, and
    ``("define_rule", name, text, is_constraint)``.
    """

    version: int
    adds: Tuple[Fact, ...] = ()
    removes: Tuple[Fact, ...] = ()
    controls: Tuple[tuple, ...] = ()

    def __len__(self) -> int:
        return len(self.adds) + len(self.removes) + len(self.controls)


@dataclass
class BootstrapState:
    """Everything a worker needs to reconstruct the primary's database.

    Captured from a published (frozen) snapshot, so it is internally
    consistent; rules ship as their parsed :class:`Rule` dataclasses
    (plain picklable data).  ``version`` is the replication sequence
    the state corresponds to — deltas at or below it are skipped.
    """

    facts: List[Fact] = field(default_factory=list)
    rules: List[Rule] = field(default_factory=list)
    enabled: Dict[str, bool] = field(default_factory=dict)
    composition_limit: Optional[int] = 1
    engine: str = "dispatched"
    version: int = 0


@dataclass
class GenerationBootstrap:
    """Bootstrap by *attaching*, not copying: shared-memory handles.

    Instead of a pickled fact list, the worker receives the names and
    layouts of the shared-memory segments holding the primary's base
    heap — and, when available, its computed standard closure — as
    frozen columnar generations (:mod:`repro.core.interned`).  The
    worker maps the segments read-only-by-convention and layers its own
    small mutable overlay on top, so per-worker incremental memory is
    the overlay plus decode memo, not a full database copy; with the
    closure shipped too, the worker skips recomputing it entirely.

    ``version`` is the replication sequence the generations correspond
    to; ``deltas`` is the suffix published after the generations were
    built, replayed by the worker before it declares readiness (the
    parent captures it under the same lock that orders delta fan-out,
    so the sequence seam is exact).  ``store_version`` /
    ``closure_version`` restore the exact store mutation counters, so
    version-keyed result caches stay continuous across attach.
    """

    base_handle: Any                      # core.interned.GenerationHandle
    closure_handle: Optional[Any] = None
    closure_stats: Optional[dict] = None  # ClosureResult scalars
    rules: List[Rule] = field(default_factory=list)
    enabled: Dict[str, bool] = field(default_factory=dict)
    composition_limit: Optional[int] = 1
    engine: str = "dispatched"
    version: int = 0
    deltas: Tuple[Delta, ...] = ()
    store_version: Optional[int] = None
    closure_version: Optional[int] = None


def capture_bootstrap(db: Database, version: int) -> BootstrapState:
    """Snapshot a database's replicable state at replication ``version``.

    ``db`` should be an immutable published snapshot (or otherwise not
    concurrently mutated while this runs).
    """
    return BootstrapState(
        facts=list(db.facts),
        rules=db.rules.all_rules(),
        enabled=db.rules.snapshot_state(),
        composition_limit=db.composition_limit,
        engine=db.engine,
        version=version,
    )


def build_replica(state: BootstrapState) -> Database:
    """A fresh mutable database equal to the captured state.

    Axioms are not re-seeded — the captured fact list already contains
    whatever the primary stored.  The replica keeps incremental
    maintenance on (that is the whole point: deltas extend the cached
    closure in place) and never auto-checks: integrity was the
    primary's job at write admission.
    """
    db = Database(state.facts, with_axioms=False, engine=state.engine)
    db.rules = RuleRegistry(state.rules)
    db.rules.restore_state(state.enabled)
    db._composition_limit = state.composition_limit  # noqa: SLF001
    return db


def build_replica_from_generation(state: GenerationBootstrap) -> Database:
    """A replica database attached to shared columnar generations.

    The base heap (and the standard closure, when its handle shipped)
    is an :class:`~repro.core.interned.InternedFactStore` over the
    parent-owned shared segment: zero fact copying at bootstrap, and
    the worker's incremental memory is its overlay plus whatever facts
    its reads decode.  Deltas in ``state.deltas`` are **not** applied
    here — the caller replays them so it can track the resulting
    version (see :func:`replica_main`).
    """
    from ..core.interned import InternedFactStore
    from ..rules.engine import ClosureResult

    db = Database(with_axioms=False, engine=state.engine)
    base = InternedFactStore.attach(state.base_handle)
    if state.store_version is not None:
        base._version = state.store_version  # noqa: SLF001
    db._base = base  # noqa: SLF001
    db.rules = RuleRegistry(state.rules)
    db.rules.restore_state(state.enabled)
    db._composition_limit = state.composition_limit  # noqa: SLF001
    if state.closure_handle is not None:
        closure_store = InternedFactStore.attach(state.closure_handle)
        if state.closure_version is not None:
            closure_store._version = state.closure_version  # noqa: SLF001
        stats = state.closure_stats or {}
        db._standard_result = ClosureResult(  # noqa: SLF001
            store=closure_store,
            base_count=stats.get("base_count", len(base)),
            derived_count=stats.get(
                "derived_count", len(closure_store) - len(base)),
            iterations=stats.get("iterations", 0),
            rule_firings=dict(stats.get("rule_firings", {})),
            rule_times=dict(stats.get("rule_times", {})),
            provenance=None,
        )
    return db


def release_attached_stores(db: Database) -> None:
    """Release a replica's shared-memory mappings (base + closure).

    Called when a worker swaps to a newly compacted generation; process
    exit would release them anyway, but an explicit close keeps the old
    segment's pages reclaimable as soon as the writer unlinks it.
    """
    for store in (db.facts,
                  getattr(db._standard_result, "store", None)  # noqa: SLF001
                  if db._standard_result is not None else None,  # noqa: SLF001
                  getattr(db._full_result, "store", None)  # noqa: SLF001
                  if db._full_result is not None else None):  # noqa: SLF001
        close = getattr(store, "close", None)
        if close is not None:
            try:
                close()
            except Exception:  # pragma: no cover - defensive
                pass


def bootstrap_from_directory(directory: str,
                             config: BootstrapState) -> Database:
    """Build a replica by replaying a durable directory's state.

    The fact heap comes from the on-disk snapshot + journal
    (:meth:`repro.storage.session.DurableSession.recover_state` — the
    journal is ordered, so the replayed heap is the primary's heap as
    of the last journaled batch), while rules, enable states, the
    composition limit, and the engine come from ``config``: rule
    definitions and toggles are not journaled, so the parent captures
    them at spawn time.  Because the disk may already be *ahead* of
    ``config.version``, the parent replays the delta suffix from that
    version; :meth:`~repro.db.Database.apply_delta` is idempotent, so
    the overlap is harmless.
    """
    from ..storage.session import DurableSession

    session = DurableSession(directory)
    try:
        disk = session.recover_state()
    finally:
        session.close()
    return build_replica(BootstrapState(
        facts=disk.facts,
        rules=config.rules,
        enabled=config.enabled,
        composition_limit=config.composition_limit,
        engine=config.engine,
        version=config.version,
    ))


def apply_delta_message(db: Database, delta: Delta) -> None:
    """Apply one shipped delta: net fact mutations, then controls.

    Fact mutations go through :meth:`~repro.db.Database.apply_delta`
    (incremental maintenance); controls go through the same public
    methods the primary used, so a rule toggle invalidates the
    replica's closure exactly as it did the primary's.
    """
    db.apply_delta(delta.adds, delta.removes)
    for control in delta.controls:
        kind = control[0]
        if kind == "limit":
            db.limit(control[1])
        elif kind == "include":
            db.include(control[1])
        elif kind == "exclude":
            db.exclude(control[1])
        elif kind == "define_rule":
            _, name, text, is_constraint = control
            db.define_rule(name, text, is_constraint=is_constraint)
        else:  # pragma: no cover - versioned protocol guard
            raise ServiceError(f"unknown control operation {kind!r}")


def _probe_payload(outcome) -> dict:
    return {"succeeded": outcome.succeeded,
            "value": outcome.value,
            "waves": len(outcome.waves)}


#: Read operations a worker can serve.  ``navigate`` ships rendered
#: text (NavigationResult holds live view references); everything else
#: returns plain picklable data.
READ_OPS = {
    "query": lambda db, payload: db.query(payload),
    "ask": lambda db, payload: db.ask(payload),
    "match": lambda db, payload: db.match(payload),
    "navigate": lambda db, payload: db.navigate(payload).render(),
    "try": lambda db, payload: db.try_(payload),
    "probe": lambda db, payload: _probe_payload(db.probe(payload)),
    "stats": lambda db, payload: db.stats(),
}


def _bootstrap(payload) -> Tuple[Database, int]:
    """Build the replica database for one bootstrap payload.

    Returns ``(db, version)`` where ``version`` is the replication
    sequence the database now reflects — for generation payloads that
    includes the shipped delta suffix, replayed here.
    """
    kind = payload[0]
    if kind == "state":
        return build_replica(payload[1]), payload[1].version
    if kind == "directory":
        return (bootstrap_from_directory(payload[1], payload[2]),
                payload[2].version)
    if kind == "generation":
        state: GenerationBootstrap = payload[1]
        db = build_replica_from_generation(state)
        version = state.version
        for delta in state.deltas:
            if delta.version > version:
                apply_delta_message(db, delta)
                version = delta.version
        return db, version
    raise ServiceError(f"unknown bootstrap payload {kind!r}")


def replica_main(conn, payload, telemetry: Optional[dict] = None) -> None:
    """The worker process entry point.

    ``conn`` is this end of a duplex pipe; ``payload`` is
    ``("state", BootstrapState)``,
    ``("generation", GenerationBootstrap)`` (attach to shared-memory
    columnar generations and replay the shipped delta suffix), or
    ``("directory", path, BootstrapState)`` (the directory variant
    reads facts from disk and takes configuration from the state).
    Builds the replica, warms its closure, then serves the pipe until
    ``("stop",)`` or EOF.  Requests are handled strictly in order, so
    a read enqueued after a delta always sees that delta applied.

    ``telemetry`` configures this process's observability:
    ``{"metrics": True}`` enables a fresh metrics registry (shipped
    back on ``metrics_request`` heartbeats), and
    ``{"slow_query_seconds": t}`` makes reads slower than ``t`` attach
    a slow-query record (with compiled-plan stats) to their result.
    ``None`` leaves whatever the process inherited — under ``fork``, a
    metrics-enabled parent's child keeps collecting into its own copy.

    SIGINT is ignored: a terminal Ctrl-C signals the whole process
    group, but shutdown is the parent's job (a ``("stop",)`` message
    or pipe EOF) — without this, every worker would die mid-``recv``
    with a traceback instead of exiting cleanly.
    """
    import os
    import signal

    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (OSError, ValueError):  # pragma: no cover - exotic hosts
        pass
    slow_threshold: Optional[float] = None
    if telemetry:
        if telemetry.get("metrics"):
            _metrics.enable_metrics(fresh=True)
        slow_threshold = telemetry.get("slow_query_seconds")
        if slow_threshold is not None:
            _qexec.KEEP_LAST_RUN = True
            _retraction.KEEP_LAST_PROBE = True
    db, version = _bootstrap(payload)
    db.view()   # warm the closure before declaring readiness
    conn.send(("ready", version))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "delta":
            delta = message[1]
            if delta.version > version:
                apply_started = time.perf_counter()
                apply_delta_message(db, delta)
                version = delta.version
                if _metrics.ENABLED:
                    _metrics.METRICS.count("replica.deltas")
                    _metrics.METRICS.observe(
                        "replica.apply_seconds",
                        time.perf_counter() - apply_started)
            conn.send(("applied", version))
        elif kind == "generation":
            # The writer compacted a new shared generation: re-attach.
            # The new generations already contain every delta at or
            # below their version, so jumping forward is safe; any
            # already-queued delta at or below it is dropped by the
            # ``version >`` guard above.  An older-than-current
            # generation (cannot happen under one writer, but guard
            # anyway) is ignored.
            state = message[1]
            target = state.version
            for delta in state.deltas:
                target = max(target, delta.version)
            if target >= version:
                old = db
                db, version = _bootstrap(("generation", state))
                db.view()
                release_attached_stores(old)
            # Distinct ack type: the parent must know the worker is
            # done with the *old* segments (a plain delta ack could
            # predate the re-attach), so it can unlink them safely.
            conn.send(("reattached", version))
        elif kind == "read":
            rid, op, read_payload, seconds = message[1:5]
            ctx = (TraceContext.from_wire(message[5])
                   if len(message) > 5 else None)
            if slow_threshold is not None:
                _qexec.clear_last_run()
            if slow_threshold is not None and op == "probe":
                _retraction.clear_last_probe()
            started = time.perf_counter()
            try:
                handler = READ_OPS.get(op)
                if handler is None:
                    raise ServiceError(f"unknown read operation {op!r}")
                if ctx is not None:
                    with ctx.span("replica.read", role="replica", op=op):
                        with _deadline.deadline_scope(seconds):
                            value = handler(db, read_payload)
                else:
                    with _deadline.deadline_scope(seconds):
                        value = handler(db, read_payload)
                ok = True
            except (ReproError, ValueError) as error:
                ok, value = False, (type(error).__name__, str(error))
            except Exception as error:  # pragma: no cover - defensive
                ok, value = False, ("ReplicaError", repr(error))
            elapsed = time.perf_counter() - started
            if _metrics.ENABLED:
                registry = _metrics.METRICS
                registry.count("serve.requests")
                registry.count(f"serve.requests.{op}")
                registry.count("replica.reads")
                registry.observe(f"serve.request_seconds.{op}", elapsed)
            extra: Optional[Dict[str, Any]] = None
            if ctx is not None:
                extra = {"spans": ctx.collect()}
            if slow_threshold is not None and elapsed >= slow_threshold:
                record = build_record(
                    op, elapsed, slow_threshold,
                    text=str(read_payload), source="replica",
                    trace_id=ctx.trace_id if ctx is not None else None,
                    deadline=seconds,
                    plan=plan_summary(_qexec.last_run()),
                    probe=(_retraction.last_probe()
                           if op == "probe" else None))
                extra = extra or {}
                extra["slow"] = record
                if _metrics.ENABLED:
                    _metrics.METRICS.count("serve.slow_queries")
            if extra is None:
                conn.send(("result", rid, ok, value, version))
            else:
                conn.send(("result", rid, ok, value, version, extra))
        elif kind == "metrics_request":
            conn.send(("metrics", version,
                       _metrics.active_metrics().snapshot()))
        elif kind == "ping":
            conn.send(("pong", version))
        elif kind == "crash":
            os._exit(3)
        elif kind == "stop":
            # Release attached shared-memory views before interpreter
            # teardown: GC order is arbitrary there, and closing a
            # segment while typed views still reference its buffer
            # raises BufferError noise on the way out.
            release_attached_stores(db)
            return
