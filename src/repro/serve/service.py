"""DatabaseService: one writer, many snapshot-isolated readers.

Concurrency model
-----------------

The service owns a private *master* :class:`~repro.db.Database` that
only the writer thread ever touches, plus one *published* snapshot
(a frozen, read-only clone produced by
:meth:`repro.db.Database.snapshot`).  The division of labour:

* **Readers** grab a local reference to the published snapshot — a
  single attribute read, atomic under the GIL — and evaluate against
  it without any locking.  The snapshot's stores are frozen, so a
  stray mutation raises :class:`~repro.core.errors.FrozenStoreError`
  instead of corrupting concurrent reads.  Each read runs inside a
  :func:`repro.core.deadline.deadline_scope`, so long evaluations are
  cancelled cooperatively at the checkpoints inside the evaluator and
  the closure engines.

* **Writers** enqueue typed operations onto a bounded admission queue
  (:class:`~repro.core.errors.Overloaded` once ``max_pending`` is
  reached) and receive a :class:`WriteTicket`.  A single writer thread
  drains the queue, coalescing everything queued within one
  ``batch_window`` into a batch: it applies the ops to the master,
  journals the effective mutations in one append
  (:meth:`repro.storage.session.DurableSession.record_batch`),
  recomputes the closure once, and atomically publishes the next
  snapshot.  Tickets resolve only *after* publication, so a caller
  that waited for its write is guaranteed to see it in subsequent
  reads (read-your-writes).

The shared result cache makes publication cheap for readers: snapshots
share the master's thread-safe LRU cache, and cache keys include the
store version, so entries computed against snapshot N stay valid and
warm for every later reader of snapshot N while snapshot N+1 starts
populating its own keys.

Checkpointing degrades gracefully: the writer folds the journal into a
fresh snapshot file while readers keep serving the last published
in-memory snapshot — no read downtime.

Example::

    from repro import Database
    from repro.serve import DatabaseService

    service = DatabaseService(Database())
    try:
        service.add("BRAHMS", "∈", "COMPOSER")        # waits for publish
        assert service.ask("(BRAHMS, ∈, COMPOSER)")   # lock-free read
        ticket = service.add_async(("MAHLER", "∈", "COMPOSER"))
        ticket.result(timeout=5.0)                     # explicit wait
    finally:
        service.close()
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any, Callable, Iterable, List, Optional, Tuple

from ..core import deadline as _deadline
from ..core.errors import (
    DeadlineExceeded,
    Overloaded,
    ReproError,
    ServiceClosed,
    ServiceError,
)
from ..browse import retraction as _retraction
from ..core.facts import Fact, fact as make_fact
from ..db import Database
from ..obs import metrics as _metrics
from ..obs import tracer as _obs
from ..obs.context import SpanRecord, TraceContext, new_span_id
from ..obs.slowlog import SlowQueryLog, build_record, plan_summary
from ..query import exec as _qexec
from .replica import Delta

__all__ = ["DatabaseService", "WriteTicket"]


def _as_fact(value) -> Fact:
    if isinstance(value, Fact):
        return value
    return make_fact(*value)


def _coalesce(entries) -> Tuple[Tuple[Fact, ...], Tuple[Fact, ...]]:
    """A batch's journal entries as net ``(adds, removes)``.

    Journal entries record *effective* mutations, so per fact they
    strictly alternate add/remove: an even count cancels out (the batch
    left that fact as it found it) and an odd count nets to the final
    operation.  Replicas therefore apply exactly the batch's net effect
    on the base heap — which determines the closure — without replaying
    intermediate flips.
    """
    last: dict = {}
    count: dict = {}
    for op, f in entries:
        last[f] = op
        count[f] = count.get(f, 0) + 1
    adds = tuple(f for f, op in last.items()
                 if op == "add" and count[f] % 2 == 1)
    removes = tuple(f for f, op in last.items()
                    if op == "remove" and count[f] % 2 == 1)
    return adds, removes


class WriteTicket:
    """A pending write: resolves once the writer has published it.

    Returned by the ``*_async`` submission methods.  ``result()``
    blocks until the batch containing this operation has been applied
    *and* the next snapshot published, then returns the operation's
    outcome (or re-raises the error it hit on the writer thread).
    """

    __slots__ = ("_event", "_value", "_error", "_version")

    def __init__(self):
        self._event = threading.Event()
        self._value = None
        self._error: Optional[BaseException] = None
        self._version: Optional[int] = None

    def _resolve(self, value) -> None:
        self._value = value
        self._event.set()

    def _reject(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    @property
    def version(self) -> Optional[int]:
        """The replication sequence that covers this write, once it is
        settled (``None`` before).  A replica whose applied version is
        at least this value has seen the write — the routing key for
        read-your-writes across :class:`repro.serve.pool.ReplicaPool`.
        """
        return self._version

    def done(self) -> bool:
        """True once the writer has settled this operation."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None):
        """Wait for the outcome.

        Raises :class:`~repro.core.errors.DeadlineExceeded` if the
        writer has not settled the operation within ``timeout``
        seconds.  Note the write is *not* revoked on timeout — it
        stays queued and may still be applied later.
        """
        if not self._event.wait(timeout):
            raise DeadlineExceeded(
                "write not applied within deadline"
                " (it remains queued and may still be applied)")
        if self._error is not None:
            raise self._error
        return self._value


# One queued operation: (kind, payload, ticket, trace context or None).
_Op = Tuple[str, Any, WriteTicket, Optional[TraceContext]]

_MUTATING_KINDS = frozenset(
    {"add", "add_many", "remove", "limit", "include", "exclude",
     "define_rule"})


class DatabaseService:
    """Thread-safe serving facade over a :class:`~repro.db.Database`.

    Args:
        db: the master database (a fresh empty one by default).  The
            service takes ownership: touching it directly from other
            threads afterwards voids the concurrency guarantees.
        session: optional :class:`~repro.storage.session.DurableSession`;
            when given, every writer batch is journaled in one append
            and ``checkpoint()`` folds the journal into the snapshot
            file.  The service detaches any per-fact callback and
            journals batches itself.
        max_pending: admission-queue bound; submissions beyond it
            raise :class:`~repro.core.errors.Overloaded`.
        batch_window: seconds the writer waits after waking so
            concurrent submissions coalesce into one batch (0 batches
            only what is already queued).
        max_batch: cap on operations per writer batch (``None`` =
            unbounded).  An unbounded writer drains everything queued,
            so a large backlog becomes one giant batch whose closure
            recomputation stalls ticket resolution and stretches the
            publish pause into a multi-millisecond read tail; the cap
            bounds that pause while keeping coalescing (leftover
            operations are drained immediately in follow-up batches,
            with no extra batch window).
        default_deadline: per-request deadline in seconds applied to
            reads and write waits when the call does not pass its own.
        slow_query_seconds: reads slower than this land in
            :attr:`slow_log` with their op, payload text, trace id,
            and (for compiled queries) the plan's est-vs-actual
            operator stats.  ``None`` (default) disables the log.
        slow_log_size: ring-buffer capacity of :attr:`slow_log`.
        start: start the writer thread immediately (tests pass False
            to stage queue states deterministically).
    """

    def __init__(self, db: Optional[Database] = None, *,
                 session=None,
                 max_pending: int = 1024,
                 batch_window: float = 0.002,
                 max_batch: Optional[int] = 256,
                 default_deadline: Optional[float] = None,
                 slow_query_seconds: Optional[float] = None,
                 slow_log_size: int = 128,
                 start: bool = True):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if max_batch is not None and max_batch < 1:
            raise ValueError("max_batch must be >= 1 (or None)")
        self._db = db if db is not None else Database()
        self._session = session
        if session is not None:
            # The service journals whole batches; a per-fact callback
            # would double-record every mutation.
            session.detach()
        self.max_pending = max_pending
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.default_deadline = default_deadline
        self.slow_query_seconds = slow_query_seconds
        self.slow_log = SlowQueryLog(slow_log_size)
        if slow_query_seconds is not None:
            # The executor keeps its last PlanRun on a thread-local
            # only while someone can consume it; slow logging is such
            # a consumer even with tracing/metrics off.  Probe
            # autopsies work the same way.
            _qexec.KEEP_LAST_RUN = True
            _retraction.KEEP_LAST_PROBE = True

        self._lock = threading.Lock()
        self._has_work = threading.Condition(self._lock)
        self._ops: deque = deque()
        self._closed = False
        self._writer: Optional[threading.Thread] = None

        # Writer-thread statistics (written only by the writer).
        self._batches = 0
        self._ops_applied = 0
        self._largest_batch = 0
        self._publishes = 0
        self._checkpoints = 0
        self._publish_pause_last = 0.0
        self._publish_pause_max = 0.0
        self._publish_pause_total = 0.0

        # Replication: the sequence number of the latest published
        # batch, and the delta subscribers it is shipped to (the
        # replica pool).  Subscribers run on the writer thread, after
        # publication and before ticket settlement, so by the time a
        # write call returns its delta is already in every replica's
        # ordered pipe.
        self._applied_seq = 0
        self._delta_subscribers: List[Callable] = []

        # Initial publication happens on the constructing thread; the
        # writer has not started yet, so the master is ours to touch.
        snap = self._build_snapshot()
        # One attribute holding the (snapshot, sequence) pair: readers
        # and the pool capture both atomically with a single ref grab.
        self._published_state: Tuple[Database, int] = (snap, 0)
        self._published = snap
        if start:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the writer thread (idempotent)."""
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is closed")
            if self._writer is not None and self._writer.is_alive():
                return
            self._writer = threading.Thread(
                target=self._writer_loop, name="repro-serve-writer",
                daemon=True)
            self._writer.start()

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Drain queued writes, stop the writer, close the session.

        Operations already queued are applied before the writer exits;
        submissions after ``close`` raise
        :class:`~repro.core.errors.ServiceClosed`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._has_work.notify_all()
            writer = self._writer
        if writer is not None and writer.is_alive():
            writer.join(timeout)
        # If the writer never ran (start=False) or failed to drain in
        # time, settle the leftovers so no caller blocks forever.
        with self._lock:
            leftovers = list(self._ops)
            self._ops.clear()
        for _, _, ticket, _ in leftovers:
            ticket._reject(ServiceClosed("service closed before the"
                                         " operation was applied"))
        if self._session is not None:
            self._session.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "DatabaseService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Writer thread
    # ------------------------------------------------------------------
    def _writer_loop(self) -> None:
        backlog = False
        while True:
            with self._has_work:
                while not self._ops and not self._closed:
                    self._has_work.wait()
                if not self._ops and self._closed:
                    return
            # Let concurrent submitters pile on for one window, then
            # take what is queued as a single batch — at most
            # ``max_batch`` operations, so one burst cannot become an
            # arbitrarily long publish pause.  When the previous drain
            # left a backlog there is nothing to wait for: coalescing
            # already happened while the last batch was applying.
            if self.batch_window > 0 and not backlog:
                time.sleep(self.batch_window)
            with self._lock:
                if self.max_batch is None:
                    batch: List[_Op] = list(self._ops)
                    self._ops.clear()
                else:
                    batch = [self._ops.popleft()
                             for _ in range(min(len(self._ops),
                                                self.max_batch))]
                backlog = bool(self._ops)
                if _obs.ENABLED:
                    _obs.TRACER.gauge("serve.queue_depth", len(self._ops))
                if _metrics.ENABLED:
                    _metrics.METRICS.gauge("serve.queue_depth",
                                           len(self._ops))
            try:
                self._apply_batch(batch)
            except Exception as error:  # pragma: no cover - defensive
                # A bug in batch application must not strand callers:
                # settle every unresolved ticket and keep serving the
                # previously published snapshot.
                wrapped = ServiceError(f"writer failed: {error!r}")
                wrapped.__cause__ = error
                for _, _, ticket, _ in batch:
                    if not ticket.done():
                        ticket._reject(wrapped)

    def _apply_batch(self, batch: List[_Op]) -> None:
        span = (_obs.TRACER.span("serve.batch", size=len(batch))
                if _obs.ENABLED else _obs.NULL_SPAN)
        settled: List[Tuple[WriteTicket, Any, Optional[BaseException]]] = []
        batch_started_wall = time.time()
        batch_started = time.perf_counter()
        with span:
            journal_entries: List[Tuple[str, Fact]] = []
            controls: List[tuple] = []
            mutated = False
            checkpoint_requested = False
            for kind, payload, ticket, _ctx in batch:
                try:
                    outcome: Any
                    if kind == "add":
                        outcome = self._db.add_fact(payload)
                        if outcome:
                            journal_entries.append(("add", payload))
                            mutated = True
                    elif kind == "add_many":
                        added = 0
                        for grouped in payload:
                            if self._db.add_fact(grouped):
                                journal_entries.append(("add", grouped))
                                mutated = True
                                added += 1
                        outcome = added
                    elif kind == "remove":
                        outcome = self._db.remove_fact(payload)
                        if outcome:
                            journal_entries.append(("remove", payload))
                            mutated = True
                    elif kind == "limit":
                        self._db.limit(payload)
                        outcome = payload
                        controls.append(("limit", payload))
                        mutated = True
                    elif kind == "include":
                        self._db.include(payload)
                        outcome = True
                        # A Rule object ships whole (replicas may not
                        # know it yet); a name ships as the name.
                        controls.append(("include", payload))
                        mutated = True
                    elif kind == "exclude":
                        self._db.exclude(payload)
                        outcome = True
                        controls.append(("exclude", getattr(
                            payload, "name", payload)))
                        mutated = True
                    elif kind == "define_rule":
                        name, text, is_constraint = payload
                        outcome = self._db.define_rule(
                            name, text, is_constraint=is_constraint)
                        controls.append(
                            ("define_rule", name, text, is_constraint))
                        mutated = True
                    elif kind == "checkpoint":
                        checkpoint_requested = True
                        outcome = True
                    else:  # pragma: no cover - guarded at submission
                        raise ServiceError(f"unknown operation {kind!r}")
                except (ReproError, ValueError) as error:
                    settled.append((ticket, None, error))
                else:
                    settled.append((ticket, outcome, None))
            if journal_entries and self._session is not None:
                self._session.record_batch(journal_entries)
            delta = None
            if mutated:
                publish_started = time.perf_counter()
                snap = self._build_snapshot()
                pause = time.perf_counter() - publish_started
                self._publish_pause_last = pause
                self._publish_pause_max = max(self._publish_pause_max,
                                              pause)
                self._publish_pause_total += pause
                self._applied_seq += 1
                self._published_state = (snap, self._applied_seq)
                self._published = snap
                adds, removes = _coalesce(journal_entries)
                delta = Delta(version=self._applied_seq, adds=adds,
                              removes=removes, controls=tuple(controls))
                if _obs.ENABLED:
                    _obs.TRACER.gauge("serve.publish_pause_seconds",
                                      pause)
                if _metrics.ENABLED:
                    _metrics.METRICS.gauge("serve.publish_pause_seconds",
                                           pause)
                    _metrics.METRICS.observe("serve.publish_pause", pause)
            if checkpoint_requested and self._session is not None:
                # Readers keep hitting the published in-memory snapshot
                # while the on-disk one is rewritten.
                self._checkpoints += 1
                self._session.checkpoint(database=self._db)
            self._batches += 1
            self._ops_applied += len(batch)
            self._largest_batch = max(self._largest_batch, len(batch))
            if _obs.ENABLED:
                _obs.TRACER.count("serve.batches")
                _obs.TRACER.count("serve.ops_applied", len(batch))
                _obs.TRACER.gauge("serve.batch_size", len(batch))
            if _metrics.ENABLED:
                _metrics.METRICS.count("serve.batches")
                _metrics.METRICS.count("serve.ops_applied", len(batch))
                _metrics.METRICS.gauge("serve.batch_size", len(batch))
                _metrics.METRICS.observe(
                    "serve.batch_seconds",
                    time.perf_counter() - batch_started)
        # Traced writes get a writer-thread span covering their batch:
        # one record per traced op, all sharing the batch's timing, so
        # the client's stitched tree shows where its write was applied.
        batch_wall = time.perf_counter() - batch_started
        for kind, _payload, _ticket, ctx in batch:
            if ctx is not None:
                ctx.add_record(SpanRecord(
                    trace_id=ctx.trace_id, span_id=new_span_id(),
                    parent_id=ctx.parent_id, name="writer.apply_batch",
                    role="writer", pid=os.getpid(),
                    start=batch_started_wall, wall=batch_wall,
                    attributes={"op": kind, "batch_size": len(batch),
                                "version": self._applied_seq}))
        # Ship the delta before settling tickets: once a write call
        # returns, its delta is already in every replica's ordered
        # pipe, so version-routed reads can only wait, never miss.
        if delta is not None:
            for subscriber in tuple(self._delta_subscribers):
                try:
                    subscriber(delta)
                except Exception:  # pragma: no cover - defensive
                    if _obs.ENABLED:
                        _obs.TRACER.count("serve.delta_subscriber_errors")
        # Settle tickets only after the snapshot swap above, so a caller
        # that waited on its ticket reads its own write.
        version = self._applied_seq
        for ticket, value, error in settled:
            ticket._version = version
            if error is not None:
                ticket._reject(error)
            else:
                ticket._resolve(value)

    def _build_snapshot(self) -> Database:
        """Clone the master and pre-warm it so readers never compute.

        Runs only on the writer thread (or in ``__init__`` before it
        starts).  Warming the *master* first means the closure is
        computed once and the snapshot copies the cached result; the
        snapshot's own ``view()`` then just wraps the copied stores.
        """
        self._db.view()
        snap = self._db.snapshot()
        snap.view()
        self._publishes += 1
        if _obs.ENABLED:
            _obs.TRACER.count("serve.snapshot_publishes")
            _obs.TRACER.gauge("serve.snapshot_version", snap.facts.version)
        return snap

    # ------------------------------------------------------------------
    # Write API
    # ------------------------------------------------------------------
    def _submit(self, kind: str, payload,
                ctx: Optional[TraceContext] = None) -> WriteTicket:
        ticket = WriteTicket()
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is closed")
            if len(self._ops) >= self.max_pending:
                if _obs.ENABLED:
                    _obs.TRACER.count("serve.overloaded")
                if _metrics.ENABLED:
                    _metrics.METRICS.count("serve.overloaded")
                raise Overloaded(
                    f"admission queue is full ({self.max_pending} pending"
                    f" writes); retry with backoff")
            self._ops.append((kind, payload, ticket, ctx))
            if _obs.ENABLED:
                _obs.TRACER.gauge("serve.queue_depth", len(self._ops))
            if _metrics.ENABLED:
                _metrics.METRICS.gauge("serve.queue_depth", len(self._ops))
            self._has_work.notify()
        return ticket

    def _await(self, ticket: WriteTicket, deadline: Optional[float]):
        timeout = deadline if deadline is not None else self.default_deadline
        return ticket.result(timeout)

    def add_async(self, new_fact,
                  ctx: Optional[TraceContext] = None) -> WriteTicket:
        """Queue an insertion; returns the ticket immediately."""
        return self._submit("add", _as_fact(new_fact), ctx)

    def remove_async(self, old_fact,
                     ctx: Optional[TraceContext] = None) -> WriteTicket:
        """Queue a removal; returns the ticket immediately."""
        return self._submit("remove", _as_fact(old_fact), ctx)

    def add(self, source: str, relationship: str, target: str,
            deadline: Optional[float] = None,
            ctx: Optional[TraceContext] = None) -> bool:
        """Insert a fact and wait until it is published."""
        ticket = self.add_async(make_fact(source, relationship, target), ctx)
        return self._await(ticket, deadline)

    def remove(self, source: str, relationship: str, target: str,
               deadline: Optional[float] = None,
               ctx: Optional[TraceContext] = None) -> bool:
        """Remove a fact and wait until the removal is published."""
        ticket = self.remove_async(
            make_fact(source, relationship, target), ctx)
        return self._await(ticket, deadline)

    def add_facts_async(self, new_facts: Iterable) -> WriteTicket:
        """Queue a *group* of insertions as one operation.

        Unlike a burst of :meth:`add_async` calls, the group is applied
        inside a single batch, so no published snapshot ever contains a
        proper subset of it — use this when several facts form one
        logical change.  (If a member raises — e.g. an integrity
        violation under ``auto_check`` — earlier members of the group
        stay applied, exactly as separately queued ops would.)  The
        ticket resolves to the number of facts actually added.
        """
        return self._submit(
            "add_many", tuple(_as_fact(f) for f in new_facts))

    def add_facts(self, new_facts: Iterable,
                  deadline: Optional[float] = None) -> int:
        """Insert a group of facts atomically (one batch) and wait;
        returns the number actually added."""
        return self._await(self.add_facts_async(new_facts), deadline)

    def limit(self, n: Optional[int],
              deadline: Optional[float] = None,
              ctx: Optional[TraceContext] = None) -> Optional[int]:
        """Set the composition limit (the paper's ``limit(n)``)."""
        return self._await(self._submit("limit", n, ctx), deadline)

    def include(self, rule, deadline: Optional[float] = None,
                ctx: Optional[TraceContext] = None) -> bool:
        """Enable a rule on the master database."""
        return self._await(self._submit("include", rule, ctx), deadline)

    def exclude(self, rule, deadline: Optional[float] = None,
                ctx: Optional[TraceContext] = None) -> bool:
        """Disable a rule on the master database."""
        return self._await(self._submit("exclude", rule, ctx), deadline)

    def define_rule(self, name: str, text: str, *,
                    is_constraint: bool = False,
                    deadline: Optional[float] = None,
                    ctx: Optional[TraceContext] = None):
        """Define (and enable) a rule; returns the parsed Rule."""
        ticket = self._submit("define_rule", (name, text, is_constraint),
                              ctx)
        return self._await(ticket, deadline)

    def checkpoint(self, deadline: Optional[float] = None) -> bool:
        """Fold the journal into a fresh on-disk snapshot.

        Runs on the writer thread; readers keep serving the published
        in-memory snapshot throughout.  Requires a durable session.
        """
        if self._session is None:
            raise ServiceError("no durable session attached;"
                               " construct with session=")
        return self._await(self._submit("checkpoint", None), deadline)

    # ------------------------------------------------------------------
    # Read API (lock-free, snapshot-isolated)
    # ------------------------------------------------------------------
    def _read(self, op: str, fn: Callable[[Database], Any],
              deadline: Optional[float],
              ctx: Optional[TraceContext] = None,
              text: str = "") -> Any:
        if self._closed:
            raise ServiceClosed("service is closed")
        snap = self._published        # atomic ref grab: our isolation
        seconds = deadline if deadline is not None else self.default_deadline
        threshold = self.slow_query_seconds
        if threshold is not None:
            # Don't attribute a previous request's plan to this one.
            _qexec.clear_last_run()
            if op == "probe":
                _retraction.clear_last_probe()
        started = time.perf_counter()
        try:
            if ctx is not None:
                with ctx.span("service.read", role="service", op=op):
                    with _deadline.deadline_scope(seconds):
                        return fn(snap)
            else:
                with _deadline.deadline_scope(seconds):
                    return fn(snap)
        except DeadlineExceeded:
            if _obs.ENABLED:
                _obs.TRACER.count("serve.deadline_exceeded")
            if _metrics.ENABLED:
                _metrics.METRICS.count("serve.deadline_exceeded")
            raise
        finally:
            elapsed = time.perf_counter() - started
            if _obs.ENABLED:
                _obs.TRACER.count("serve.requests")
                _obs.TRACER.count(f"serve.requests.{op}")
                _obs.TRACER.gauge("serve.request_seconds", elapsed)
            if _metrics.ENABLED:
                registry = _metrics.METRICS
                registry.count("serve.requests")
                registry.count(f"serve.requests.{op}")
                registry.observe(f"serve.request_seconds.{op}", elapsed)
            if threshold is not None and elapsed >= threshold:
                self.slow_log.add(build_record(
                    op, elapsed, threshold, text=text, source="primary",
                    trace_id=ctx.trace_id if ctx is not None else None,
                    deadline=seconds,
                    plan=plan_summary(_qexec.last_run()),
                    probe=(_retraction.last_probe()
                           if op == "probe" else None)))
                if _metrics.ENABLED:
                    _metrics.METRICS.count("serve.slow_queries")

    def query(self, query, deadline: Optional[float] = None,
              ctx: Optional[TraceContext] = None):
        """Evaluate a query against the published snapshot."""
        return self._read("query", lambda db: db.query(query), deadline,
                          ctx, str(query))

    def ask(self, query, deadline: Optional[float] = None,
            ctx: Optional[TraceContext] = None) -> bool:
        """Closed-query test against the published snapshot."""
        return self._read("ask", lambda db: db.ask(query), deadline,
                          ctx, str(query))

    def match(self, pattern, deadline: Optional[float] = None,
              ctx: Optional[TraceContext] = None):
        """Template match against the published snapshot."""
        return self._read("match", lambda db: db.match(pattern), deadline,
                          ctx, str(pattern))

    def navigate(self, pattern, deadline: Optional[float] = None,
                 ctx: Optional[TraceContext] = None):
        """Browse one template step against the published snapshot."""
        return self._read("navigate", lambda db: db.navigate(pattern),
                          deadline, ctx, str(pattern))

    def try_(self, entity: str, deadline: Optional[float] = None,
             ctx: Optional[TraceContext] = None):
        """The paper's ``try`` operator against the snapshot."""
        return self._read("try", lambda db: db.try_(entity), deadline,
                          ctx, str(entity))

    def probe(self, query, deadline: Optional[float] = None,
              ctx: Optional[TraceContext] = None):
        """Broadened query (vagueness, §5) against the snapshot."""
        return self._read("probe", lambda db: db.probe(query), deadline,
                          ctx, str(query))

    def why(self, fact, deadline: Optional[float] = None,
            ctx: Optional[TraceContext] = None):
        """Derivation tree for a fact, from the snapshot's provenance."""
        return self._read("why", lambda db: db.why(fact), deadline,
                          ctx, str(fact))

    def read_view(self) -> Database:
        """The currently published snapshot (frozen, safe to share).

        Holders keep a consistent point-in-time database even as later
        batches publish newer snapshots.
        """
        if self._closed:
            raise ServiceClosed("service is closed")
        return self._published

    # ------------------------------------------------------------------
    # Replication (repro.serve.pool)
    # ------------------------------------------------------------------
    def published_state(self) -> Tuple[Database, int]:
        """The published snapshot and its replication sequence, as one
        atomically captured pair.

        The pool bootstraps workers from this: capturing the pair with
        a single reference grab guarantees the captured version really
        describes the captured snapshot, however many batches publish
        concurrently.
        """
        return self._published_state

    @property
    def applied_seq(self) -> int:
        """The replication sequence: published batches so far."""
        return self._published_state[1]

    def subscribe_deltas(self, callback) -> None:
        """Register a delta subscriber (called on the writer thread
        with each published :class:`~repro.serve.replica.Delta`, in
        order, after publication and before ticket settlement).
        Callbacks must be quick and must not raise."""
        with self._lock:
            self._delta_subscribers.append(callback)

    def unsubscribe_deltas(self, callback) -> None:
        """Remove a previously registered delta subscriber."""
        with self._lock:
            if callback in self._delta_subscribers:
                self._delta_subscribers.remove(callback)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Service-level counters plus the published snapshot's shape."""
        snap = self._published
        with self._lock:
            pending = len(self._ops)
        return {
            "pending_writes": pending,
            "max_pending": self.max_pending,
            "batch_window": self.batch_window,
            "max_batch": self.max_batch,
            "batches": self._batches,
            "ops_applied": self._ops_applied,
            "largest_batch": self._largest_batch,
            "snapshot_publishes": self._publishes,
            "checkpoints": self._checkpoints,
            "publish_pause_last_s": round(self._publish_pause_last, 6),
            "publish_pause_max_s": round(self._publish_pause_max, 6),
            "publish_pause_total_s": round(self._publish_pause_total, 6),
            "applied_seq": self.applied_seq,
            "slow_query_seconds": self.slow_query_seconds,
            "slow_queries": self.slow_log.total,
            "published_version": snap.facts.version,
            "base_facts": len(snap.facts),
            "durable": self._session is not None,
            "closed": self._closed,
        }

    def database_stats(self, deadline: Optional[float] = None) -> dict:
        """The snapshot's own :meth:`~repro.db.Database.stats`."""
        return self._read("stats", lambda db: db.stats(), deadline)

    def ping(self) -> dict:
        """Cheap liveness probe: snapshot version and fact count."""
        snap = self._published
        return {"version": snap.facts.version, "facts": len(snap.facts)}

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"DatabaseService({state}, facts={len(self._published.facts)},"
                f" publishes={self._publishes}, batches={self._batches})")
