"""JSON-lines TCP access to a :class:`~repro.serve.DatabaseService`.

Protocol
--------

One request per line, one response per line, both JSON objects
(stdlib only — no new dependencies)::

    -> {"op": "query", "query": "(x, ∈, COMPOSER)", "deadline": 2.0}
    <- {"ok": true, "result": [["BRAHMS"], ["MAHLER"]]}

    -> {"op": "add", "fact": ["ELGAR", "∈", "COMPOSER"]}
    <- {"ok": true, "result": true}

    -> {"op": "query", "query": "(x, BOGUS"}
    <- {"ok": false, "error": "ParseError", "message": "..."}

Errors travel as the exception's class name plus message; the client
re-raises the matching class from :mod:`repro.core.errors`, so remote
callers handle :class:`~repro.core.errors.Overloaded` and
:class:`~repro.core.errors.DeadlineExceeded` exactly like local ones.
Result sets are serialised as sorted lists of lists (JSON has no sets
or tuples); rendered operators (``navigate``, ``try``) ship their text.

Protocol version 3 adds distributed tracing and telemetry verbs, all
backward compatible (old clients simply omit the new fields):

* a request may carry ``"trace": {"id": ..., "parent": ...}``; the
  response then carries ``"trace": [span records]`` — every span this
  server (and, through the pool, its replica workers) contributed, for
  the client to stitch into one tree
  (:mod:`repro.obs.context`);
* ``{"op": "metrics"}`` returns the pool-wide merged metrics snapshot
  (``{"format": "prometheus"}`` for text exposition,
  ``{"refresh": true}`` to heartbeat the workers first);
* ``{"op": "slowlog"}`` returns the service's slow-query records.

Example (in-process round trip)::

    from repro import Database
    from repro.serve import DatabaseService
    from repro.serve.net import ServiceClient, ServiceServer

    service = DatabaseService(Database())
    server = ServiceServer(service, port=0)   # 0 = ephemeral port
    server.start()
    host, port = server.address
    with ServiceClient(host, port) as client:
        client.add("JOHN", "∈", "EMPLOYEE")
        assert client.ask("(JOHN, ∈, EMPLOYEE)")
    server.close()
    service.close()
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Any, Dict, Optional, Tuple

from ..core.errors import ReproError, ServiceError, error_class
from ..obs import metrics as _metrics
from ..obs import tracer as _obs
from ..obs.context import TraceContext, render_trace

__all__ = ["ServiceServer", "ServiceClient", "RemoteShell",
           "PROTOCOL_VERSION"]

PROTOCOL_VERSION = 3

#: Read operations that a :class:`~repro.serve.pool.ReplicaPool` can
#: serve instead of the primary.  Everything else (writes, control
#: operations, service stats, checkpoint) stays on the service.
_POOL_READS = frozenset(
    {"query", "ask", "match", "navigate", "try", "probe", "db_stats"})


def _rows(result) -> list:
    """A set of tuples as a deterministic JSON value."""
    return sorted(list(row) for row in result)


def _facts(facts) -> list:
    return [list(f) for f in facts]


def _dispatch_pool(pool, op: str, request: Dict[str, Any],
                   deadline, min_version: int,
                   ctx: Optional[TraceContext] = None) -> Any:
    """Serve one of :data:`_POOL_READS` from a replica.

    ``min_version`` is the connection's read-your-writes floor: the
    replication sequence its last acknowledged write landed in, so a
    client that wrote over this socket never reads a replica that has
    not caught up (the pool falls back to the primary if none has).
    """
    if op == "query":
        return _rows(pool.query(request["query"], deadline=deadline,
                                min_version=min_version, ctx=ctx))
    if op == "ask":
        return pool.ask(request["query"], deadline=deadline,
                        min_version=min_version, ctx=ctx)
    if op == "match":
        return _facts(pool.match(request["pattern"], deadline=deadline,
                                 min_version=min_version, ctx=ctx))
    if op == "navigate":
        return pool.navigate(request["pattern"], deadline=deadline,
                             min_version=min_version, ctx=ctx)
    if op == "try":
        return _facts(pool.try_(request["entity"], deadline=deadline,
                                min_version=min_version, ctx=ctx))
    if op == "probe":
        outcome = pool.probe(request["query"], deadline=deadline,
                             min_version=min_version, ctx=ctx)
        return {"succeeded": outcome["succeeded"],
                "value": _rows(outcome["value"]),
                "waves": outcome["waves"]}
    if op == "db_stats":
        return pool.database_stats(deadline=deadline,
                                   min_version=min_version, ctx=ctx)
    raise ServiceError(f"unknown pool operation {op!r}")


def _dispatch(service, request: Dict[str, Any], pool=None,
              state: Optional[Dict[str, Any]] = None,
              ctx: Optional[TraceContext] = None) -> Any:
    op = request.get("op")
    deadline = request.get("deadline")
    if pool is not None and op in _POOL_READS:
        floor = state.get("min_version", 0) if state else 0
        return _dispatch_pool(pool, op, request, deadline, floor, ctx)
    if op == "ping":
        info = service.ping()
        info["protocol"] = PROTOCOL_VERSION
        if pool is not None:
            info["workers"] = pool.workers
        return info
    if op == "metrics":
        if pool is not None:
            snapshot = pool.metrics(refresh=bool(request.get("refresh")))
        else:
            snapshot = _metrics.active_metrics().snapshot()
        if request.get("format") == "prometheus":
            return _metrics.to_prometheus(snapshot)
        return snapshot
    if op == "slowlog":
        return service.slow_log.snapshot(request.get("limit"))
    if op == "query":
        return _rows(service.query(request["query"], deadline=deadline,
                                   ctx=ctx))
    if op == "ask":
        return service.ask(request["query"], deadline=deadline, ctx=ctx)
    if op == "match":
        return _facts(service.match(request["pattern"], deadline=deadline,
                                    ctx=ctx))
    if op == "navigate":
        return service.navigate(request["pattern"],
                                deadline=deadline, ctx=ctx).render()
    if op == "try":
        return _facts(service.try_(request["entity"], deadline=deadline,
                                   ctx=ctx))
    if op == "probe":
        outcome = service.probe(request["query"], deadline=deadline,
                                ctx=ctx)
        return {"succeeded": outcome.succeeded,
                "value": _rows(outcome.value),
                "waves": len(outcome.waves)}
    if op == "add":
        result = service.add(*request["fact"], deadline=deadline, ctx=ctx)
    elif op == "remove":
        result = service.remove(*request["fact"], deadline=deadline,
                                ctx=ctx)
    elif op == "limit":
        result = service.limit(request["n"], deadline=deadline, ctx=ctx)
    elif op == "include":
        service.include(request["rule"], deadline=deadline, ctx=ctx)
        result = True
    elif op == "exclude":
        service.exclude(request["rule"], deadline=deadline, ctx=ctx)
        result = True
    elif op == "rule":
        rule = service.define_rule(
            request["name"], request["text"],
            is_constraint=bool(request.get("is_constraint", False)),
            deadline=deadline, ctx=ctx)
        result = str(rule)
    elif op == "checkpoint":
        return service.checkpoint(deadline=deadline)
    elif op == "stats":
        stats = service.stats()
        if pool is not None:
            stats["pool"] = pool.stats()
        return stats
    elif op == "db_stats":
        return service.database_stats(deadline=deadline)
    else:
        raise ServiceError(f"unknown operation {op!r}")
    # A write (or control op) returned: this batch has published, so
    # raise the connection's read-your-writes floor to it.
    if state is not None:
        state["min_version"] = service.applied_seq
    return result


class ServiceServer:
    """A threading TCP server speaking the JSON-lines protocol.

    Each connection gets its own handler thread; reads are lock-free
    against the service's published snapshot, so connection threads
    scale without contending.  ``port=0`` binds an ephemeral port
    (read it back from :attr:`address`).

    With ``pool=`` (a :class:`~repro.serve.pool.ReplicaPool`), read
    operations are dispatched to replica worker *processes* instead of
    the primary, lifting aggregate read throughput past the GIL.
    Writes still go through the service; each connection tracks the
    replication sequence of its last acknowledged write and reads with
    that floor, so read-your-writes holds per connection even though
    replicas lag the primary.
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 7474,
                 pool=None):
        self.service = service
        self.pool = pool

        outer = self

        class _Handler(socketserver.StreamRequestHandler):
            def handle(self):
                state: Dict[str, Any] = {"min_version": 0}
                for raw in self.rfile:
                    line = raw.decode("utf-8", errors="replace").strip()
                    if not line:
                        continue
                    response = outer._respond(line, state)
                    self.wfile.write(
                        (json.dumps(response, ensure_ascii=False) + "\n")
                        .encode("utf-8"))
                    self.wfile.flush()

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = _Server((host, port), _Handler)
        self._thread: Optional[threading.Thread] = None

    def _respond(self, line: str,
                 state: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        ctx: Optional[TraceContext] = None
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ServiceError("request must be a JSON object")
            ctx = TraceContext.from_wire(request.get("trace"))
            if ctx is None:
                result = _dispatch(self.service, request, self.pool, state)
            else:
                with ctx.span("net.dispatch", role="server",
                              op=request.get("op", "")):
                    result = _dispatch(self.service, request, self.pool,
                                       state, ctx)
        except ReproError as error:
            if _obs.ENABLED:
                _obs.TRACER.count("serve.net.errors")
            if _metrics.ENABLED:
                _metrics.METRICS.count("serve.net.errors")
            response = {"ok": False, "error": type(error).__name__,
                        "message": str(error)}
            if ctx is not None:
                response["trace"] = ctx.collect()
            return response
        except (KeyError, TypeError, ValueError,
                json.JSONDecodeError) as error:
            if _obs.ENABLED:
                _obs.TRACER.count("serve.net.errors")
            if _metrics.ENABLED:
                _metrics.METRICS.count("serve.net.errors")
            return {"ok": False, "error": "ServiceError",
                    "message": f"bad request: {error!r}"}
        if _obs.ENABLED:
            _obs.TRACER.count("serve.net.requests")
        if _metrics.ENABLED:
            _metrics.METRICS.count("serve.net.requests")
        response = {"ok": True, "result": result}
        if ctx is not None:
            response["trace"] = ctx.collect()
        return response

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — useful with ``port=0``."""
        return self._server.server_address[:2]

    def start(self) -> None:
        """Serve on a background thread; returns immediately."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-serve-net",
            daemon=True)
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``serve`` shell mode)."""
        self._server.serve_forever()

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ServiceServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ServiceClient:
    """A blocking JSON-lines client for :class:`ServiceServer`.

    Remote errors re-raise as their local classes, so
    ``except Overloaded:`` works the same against a socket as against
    an in-process :class:`~repro.serve.DatabaseService`.

    With ``trace=True`` every call carries a fresh trace context and
    the stitched span records — client span, server dispatch, service
    or pool spans, replica-worker spans from other processes — land on
    :attr:`last_trace` (render with
    :func:`repro.obs.context.render_trace`).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7474,
                 timeout: Optional[float] = 30.0, trace: bool = False):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8")
        self._writer = self._sock.makefile("w", encoding="utf-8")
        self.trace = trace
        #: Span records of the most recent traced call (wire dicts).
        self.last_trace: list = []

    def _call(self, op: str, **fields) -> Any:
        request = {"op": op}
        request.update({k: v for k, v in fields.items() if v is not None})
        return self._call_raw(request)

    def _roundtrip(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self._writer.write(json.dumps(request, ensure_ascii=False) + "\n")
        self._writer.flush()
        line = self._reader.readline()
        if not line:
            raise ServiceError("server closed the connection")
        return json.loads(line)

    def _call_raw(self, request: Dict[str, Any]) -> Any:
        if not self.trace:
            response = self._roundtrip(request)
        else:
            ctx = TraceContext.new()
            with ctx.span("client.request", role="client",
                          op=request.get("op", "")):
                traced = dict(request)
                traced["trace"] = ctx.wire()
                response = self._roundtrip(traced)
            ctx.absorb(response.get("trace") or ())
            self.last_trace = ctx.collect()
        if response.get("ok"):
            return response.get("result")
        raise error_class(response.get("error", ""))(
            response.get("message", "remote error"))

    # -- mirrored API ---------------------------------------------------
    def ping(self) -> dict:
        return self._call("ping")

    def query(self, query: str, deadline: Optional[float] = None) -> list:
        return self._call("query", query=query, deadline=deadline)

    def ask(self, query: str, deadline: Optional[float] = None) -> bool:
        return self._call("ask", query=query, deadline=deadline)

    def match(self, pattern: str, deadline: Optional[float] = None) -> list:
        return self._call("match", pattern=pattern, deadline=deadline)

    def navigate(self, pattern: str,
                 deadline: Optional[float] = None) -> str:
        return self._call("navigate", pattern=pattern, deadline=deadline)

    def try_(self, entity: str, deadline: Optional[float] = None) -> list:
        return self._call("try", entity=entity, deadline=deadline)

    def probe(self, query: str, deadline: Optional[float] = None) -> dict:
        """Returns ``{"succeeded": bool, "value": rows, "waves": n}``."""
        return self._call("probe", query=query, deadline=deadline)

    def add(self, source: str, relationship: str, target: str,
            deadline: Optional[float] = None) -> bool:
        return self._call("add", fact=[source, relationship, target],
                          deadline=deadline)

    def remove(self, source: str, relationship: str, target: str,
               deadline: Optional[float] = None) -> bool:
        return self._call("remove", fact=[source, relationship, target],
                          deadline=deadline)

    def limit(self, n: Optional[int],
              deadline: Optional[float] = None):
        # n=None is meaningful (unlimited), so send it explicitly
        # instead of letting _call's None-filter drop it.
        request: Dict[str, Any] = {"op": "limit", "n": n}
        if deadline is not None:
            request["deadline"] = deadline
        return self._call_raw(request)

    def include(self, rule: str, deadline: Optional[float] = None) -> bool:
        return self._call("include", rule=rule, deadline=deadline)

    def exclude(self, rule: str, deadline: Optional[float] = None) -> bool:
        return self._call("exclude", rule=rule, deadline=deadline)

    def define_rule(self, name: str, text: str, *,
                    is_constraint: bool = False,
                    deadline: Optional[float] = None) -> str:
        return self._call("rule", name=name, text=text,
                          is_constraint=is_constraint or None,
                          deadline=deadline)

    def checkpoint(self, deadline: Optional[float] = None) -> bool:
        return self._call("checkpoint", deadline=deadline)

    def stats(self) -> dict:
        return self._call("stats")

    def database_stats(self, deadline: Optional[float] = None) -> dict:
        return self._call("db_stats", deadline=deadline)

    def metrics(self, format: Optional[str] = None,
                refresh: bool = False):
        """The server's (pool-wide, merged) metrics snapshot;
        ``format="prometheus"`` returns exposition text instead."""
        return self._call("metrics", format=format,
                          refresh=refresh or None)

    def slowlog(self, limit: Optional[int] = None) -> dict:
        """The server's slow-query log:
        ``{"total": n, "records": [...]}``."""
        return self._call("slowlog", limit=limit)

    def render_last_trace(self) -> str:
        """The most recent traced call's span tree as text."""
        return render_trace(self.last_trace)

    def close(self) -> None:
        try:
            self._reader.close()
            self._writer.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RemoteShell:
    """A minimal interactive shell over a :class:`ServiceClient`.

    Speaks a subset of :class:`~repro.shell.BrowserShell`'s commands —
    the ones that round-trip cleanly over the wire.
    """

    PROMPT = "remote> "

    def __init__(self, client: ServiceClient):
        self.client = client

    def execute(self, line: str) -> str:
        line = line.strip()
        if not line:
            return ""
        if line.startswith("("):
            return self.client.navigate(line)
        parts = line.split(None, 1)
        command, rest = parts[0].lower(), (parts[1] if len(parts) > 1 else "")
        try:
            return self._run(command, rest)
        except ReproError as error:
            return f"error ({type(error).__name__}): {error}"

    def _run(self, command: str, rest: str) -> str:
        client = self.client
        if command in ("quit", "exit"):
            raise EOFError
        if command == "help":
            return ("commands: (template) | query Q | ask Q | try ENTITY |"
                    " probe Q | add S R T | remove S R T | limit N |"
                    " rule NAME TEXT | include NAME | exclude NAME |"
                    " stats | metrics | slowlog [N] | trace on|off|last |"
                    " checkpoint | ping | quit")
        if command == "ping":
            info = client.ping()
            return (f"ok: version {info['version']},"
                    f" {info['facts']} facts")
        if command == "query":
            rows = client.query(rest)
            if not rows:
                return "no results"
            return "\n".join("(" + ", ".join(row) + ")" for row in rows)
        if command == "ask":
            return "yes" if client.ask(rest) else "no"
        if command == "try":
            facts = client.try_(rest.strip())
            if not facts:
                return "no facts"
            return "\n".join(f"({s}, {r}, {t})" for s, r, t in facts)
        if command == "probe":
            outcome = client.probe(rest)
            status = "succeeded" if outcome["succeeded"] else "failed"
            lines = [f"{status} after {outcome['waves']} wave(s)"]
            lines += ["(" + ", ".join(row) + ")"
                      for row in outcome["value"]]
            return "\n".join(lines)
        if command == "add":
            source, relationship, target = rest.split()
            added = client.add(source, relationship, target)
            return "added" if added else "already present"
        if command == "remove":
            source, relationship, target = rest.split()
            removed = client.remove(source, relationship, target)
            return "removed" if removed else "not present"
        if command == "limit":
            value = None if rest.strip().lower() == "none" else int(rest)
            client.limit(value)
            return f"composition limit = {value}"
        if command == "rule":
            name, text = rest.split(None, 1)
            return "defined " + client.define_rule(name, text)
        if command == "include":
            client.include(rest.strip())
            return f"included {rest.strip()}"
        if command == "exclude":
            client.exclude(rest.strip())
            return f"excluded {rest.strip()}"
        if command == "checkpoint":
            client.checkpoint()
            return "checkpointed"
        if command == "stats":
            stats = client.stats()
            return "\n".join(f"{key}: {value}"
                             for key, value in sorted(stats.items()))
        if command == "metrics":
            if rest.strip() == "prometheus":
                return client.metrics(format="prometheus").rstrip()
            snapshot = client.metrics(refresh=True)
            lines = [f"{name}: {value}" for name, value
                     in sorted(snapshot.get("counters", {}).items())]
            for name, histogram in sorted(
                    snapshot.get("histograms", {}).items()):
                lines.append(
                    f"{name}: count={histogram['count']}"
                    f" p50={histogram['p50'] * 1000:.3f}ms"
                    f" p99={histogram['p99'] * 1000:.3f}ms")
            return "\n".join(lines) or "(no metrics collected)"
        if command == "slowlog":
            limit = int(rest) if rest.strip() else 10
            log = client.slowlog(limit=limit)
            if not log["records"]:
                return f"slow queries: {log['total']} total, none retained"
            lines = [f"slow queries: {log['total']} total"]
            for record in log["records"]:
                lines.append(
                    f"  [{record['source']}] {record['op']}"
                    f" {record.get('text', '')}"
                    f" {record['seconds'] * 1000:.1f}ms"
                    f" (threshold {record['threshold'] * 1000:.1f}ms)")
            return "\n".join(lines)
        if command == "trace":
            mode = rest.strip().lower()
            if mode == "last":
                if not client.last_trace:
                    return "no traced call yet (enable with 'trace on')"
                return client.render_last_trace().rstrip()
            if mode not in ("on", "off"):
                return "usage: trace on|off|last"
            client.trace = mode == "on"
            return f"per-request tracing {mode}"
        return f"unknown command: {command!r} (try 'help')"

    def run(self, stdin=None, stdout=None) -> None:
        import sys

        stdin = stdin or sys.stdin
        stdout = stdout or sys.stdout
        stdout.write("connected — 'help' lists commands, 'quit' leaves\n")
        while True:
            stdout.write(self.PROMPT)
            stdout.flush()
            line = stdin.readline()
            if not line:
                break
            try:
                output = self.execute(line)
            except EOFError:
                break
            except (ValueError, OSError) as error:
                output = f"error: {error}"
            if output:
                stdout.write(output + "\n")
