"""ReplicaPool: multi-process read scaling past the GIL.

The thread-based :class:`~repro.serve.DatabaseService` tops out near
one core of aggregate read throughput — CPython's GIL serializes the
pure-Python evaluators however many reader threads connect.  The pool
breaks that ceiling with the classic replicated-state-machine split:
the service keeps its single writer thread on the *primary*, and N
worker *processes* each hold a full :class:`~repro.db.Database`
replica, kept current by the ordered delta log the writer emits after
every published batch (:meth:`DatabaseService.subscribe_deltas`).
Replicas apply deltas through the database's incremental maintenance —
insertion extension and Delete/Rederive — so the replica hot path
never recomputes a closure from scratch.

Reads are routed round-robin with per-worker inflight accounting
(rotate for fairness, prefer the least-loaded eligible worker).
Read-your-writes is preserved by version routing: a read carrying a
settled :class:`~repro.serve.service.WriteTicket` is only dispatched
to workers whose applied replication sequence has reached the
ticket's; when no replica is fresh enough (or none is alive) the read
falls back to the primary's published snapshot, which by construction
is always current.  A crashed worker is detected by its pipe closing,
its inflight requests are retried on the primary, and a replacement is
respawned and bootstrapped from the current published snapshot (or
from the durable directory's journal/checkpoint when one was given).

Example::

    from repro import Database
    from repro.serve import DatabaseService, ReplicaPool

    service = DatabaseService(Database())
    pool = ReplicaPool(service, workers=2)
    try:
        ticket = service.add_async(("BRAHMS", "∈", "COMPOSER"))
        ticket.result(timeout=10.0)
        pool.query("(x, ∈, COMPOSER)", ticket=ticket)  # sees the write
    finally:
        pool.close()
        service.close()
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import (
    DeadlineExceeded,
    ReplicaError,
    ServiceClosed,
    error_class,
)
from ..obs import metrics as _metrics
from ..obs import tracer as _obs
from ..obs.context import TraceContext
from .replica import (
    BootstrapState,
    Delta,
    GenerationBootstrap,
    capture_bootstrap,
    replica_main,
)
from .service import DatabaseService, WriteTicket

__all__ = ["ReplicaPool"]

#: Maximum deltas buffered for generation-bootstrap replay.  Past this,
#: a respawning worker would spend longer replaying than attaching —
#: the pool marks the generation stale and rebuilds it at next spawn.
GENERATION_LOG_CAP = 512


class _SharedGenerations:
    """One published pair of shared columnar generations (base heap +
    standard closure) and everything needed to ship or retire them.

    Owned by the pool (the creating process): workers only ever attach.
    ``seq`` is the replication sequence the generations reflect.
    """

    __slots__ = ("base_gen", "base_handle", "closure_gen",
                 "closure_handle", "closure_stats", "seq",
                 "store_version", "closure_version")

    def __init__(self, base_gen, base_handle, closure_gen,
                 closure_handle, closure_stats, seq,
                 store_version, closure_version):
        self.base_gen = base_gen
        self.base_handle = base_handle
        self.closure_gen = closure_gen
        self.closure_handle = closure_handle
        self.closure_stats = closure_stats
        self.seq = seq
        self.store_version = store_version
        self.closure_version = closure_version

    def segment_names(self) -> List[str]:
        names = [self.base_handle.name]
        if self.closure_handle is not None:
            names.append(self.closure_handle.name)
        return names

    def release(self) -> None:
        """Unmap the pool's own views of the segments.  Built-then-shared
        generations keep their process-local arrays, so a generation
        borrowed from a live snapshot store stays usable after this."""
        self.base_gen.close()
        if self.closure_gen is not None:
            self.closure_gen.close()


class _Pending:
    """One inflight read: resolved by the worker's receiver thread."""

    __slots__ = ("event", "ok", "value", "extra", "died")

    def __init__(self):
        self.event = threading.Event()
        self.ok = False
        self.value: Any = None
        self.extra: Optional[dict] = None
        self.died = False

    def resolve(self, ok: bool, value: Any,
                extra: Optional[dict] = None) -> None:
        self.ok = ok
        self.value = value
        self.extra = extra
        self.event.set()

    def fail_dead(self) -> None:
        self.died = True
        self.event.set()


class _Worker:
    """Parent-side handle for one replica process."""

    __slots__ = ("index", "generation", "process", "conn", "send_lock",
                 "pending", "applied", "ready", "alive", "start_seq",
                 "receiver", "metrics_snapshot", "metrics_seq",
                 "gen_acks")

    def __init__(self, index: int, generation: int, process, conn,
                 start_seq: int):
        self.index = index
        self.generation = generation
        self.process = process
        self.conn = conn
        self.send_lock = threading.Lock()
        self.pending: Dict[int, _Pending] = {}
        self.applied = -1          # replication seq; -1 until "ready"
        self.ready = False
        self.alive = True
        self.start_seq = start_seq
        self.receiver: Optional[threading.Thread] = None
        self.metrics_snapshot: Optional[dict] = None
        self.metrics_seq = 0       # heartbeat snapshots received
        self.gen_acks = 0          # generation re-attach acks received

    def send(self, message) -> bool:
        """Serialized pipe send; False (not an exception) on a dead
        pipe — the receiver thread owns death handling."""
        try:
            with self.send_lock:
                self.conn.send(message)
            return True
        except (OSError, ValueError, BrokenPipeError):
            return False


class ReplicaPool:
    """N process-local read replicas behind one primary service.

    Args:
        service: the primary.  The pool subscribes to its delta stream;
            writes still go through the service's own API.
        workers: number of replica processes.
        start_method: ``multiprocessing`` start method; default picks
            ``fork`` where available (fast spawn/respawn) and falls
            back to ``spawn``.
        bootstrap: how workers receive the primary's state.
            ``"generation"`` (the default) builds one shared-memory
            columnar generation pair — base heap plus computed standard
            closure (:mod:`repro.core.interned`) — and ships each
            worker a *handle* (segment name + layout) to attach, plus
            the delta suffix published since the generation was built;
            bootstrap cost and per-worker memory are then independent
            of heap size.  ``"state"`` ships a pickled
            :class:`BootstrapState` (the PR-4 behavior; every worker
            copies and re-indexes the full heap and recomputes the
            closure).  ``"directory"`` replays the durable directory —
            selected automatically when ``bootstrap_directory`` is
            given.
        bootstrap_directory: when the service is durable, workers can
            bootstrap by replaying the directory's snapshot + journal
            themselves instead of receiving the fact heap over the
            pipe (rule configuration still ships — it is not
            journaled).  Delta application is idempotent, so the disk
            being slightly ahead of the captured sequence is harmless.
        respawn: automatically replace crashed workers.
        read_timeout: default seconds to wait for a worker's answer
            when the read itself carries no deadline.
        wait_ready: block the constructor until every worker has built
            its replica and warmed its closure.
        lag_samples: how many per-delta replication latency samples to
            retain for :meth:`lag_stats`.
        telemetry: worker observability config, shipped at spawn:
            ``{"metrics": bool, "slow_query_seconds": float|None}``.
            ``None`` derives it from the parent — metrics enabled iff
            the parent's registry is enabled at spawn time, slow
            threshold copied from the service.
        heartbeat_interval: seconds between ``metrics_request``
            heartbeats to workers (their snapshots feed
            :meth:`metrics`).  ``None`` (default) starts a heartbeat
            only when worker metrics are on, every 2 s; pass ``0`` to
            disable the background heartbeat entirely
            (:meth:`refresh_metrics` still works on demand).
    """

    def __init__(self, service: DatabaseService, workers: int = 2, *,
                 start_method: Optional[str] = None,
                 bootstrap: Optional[str] = None,
                 bootstrap_directory: Optional[str] = None,
                 respawn: bool = True,
                 read_timeout: Optional[float] = 30.0,
                 wait_ready: bool = True,
                 ready_timeout: float = 60.0,
                 lag_samples: int = 4096,
                 telemetry: Optional[dict] = None,
                 heartbeat_interval: Optional[float] = None,
                 compact_after: Optional[int] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if compact_after is not None and compact_after < 1:
            raise ValueError("compact_after must be >= 1")
        self._service = service
        self._bootstrap_directory = bootstrap_directory
        if bootstrap is None:
            bootstrap = ("directory" if bootstrap_directory is not None
                         else "generation")
        if bootstrap not in ("generation", "state", "directory"):
            raise ValueError(f"unknown bootstrap mode: {bootstrap!r}")
        if bootstrap == "directory" and bootstrap_directory is None:
            raise ValueError(
                "bootstrap='directory' requires bootstrap_directory")
        self.bootstrap = bootstrap
        # Shared-generation state (all under self._lock): the current
        # generation pair, the delta suffix published since it was
        # built (replayed by attaching workers), and segment names
        # retired by compaction but not yet safe to unlink.
        self._gen: Optional[_SharedGenerations] = None
        self._gen_log: List[Delta] = []
        self._gen_stale = False
        self._retired_segments: List[str] = []
        # Auto-compaction: once the delta-replay buffer holds this many
        # entries, a background thread folds them into a fresh shared
        # generation (``compact_generation``).  ``None`` disables.
        self.compact_after = compact_after
        self.compactions = 0
        self._compacting = False
        self._compact_thread: Optional[threading.Thread] = None
        self._respawn = respawn
        self.read_timeout = read_timeout
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        if telemetry is None:
            telemetry = {"metrics": _metrics.ENABLED,
                         "slow_query_seconds": service.slow_query_seconds}
        self._telemetry = telemetry
        if heartbeat_interval is None:
            heartbeat_interval = 2.0 if telemetry.get("metrics") else 0.0
        self.heartbeat_interval = heartbeat_interval
        self._heartbeat_stop = threading.Event()
        self._heartbeat: Optional[threading.Thread] = None

        self._lock = threading.RLock()
        self._version_cv = threading.Condition(self._lock)
        self._workers: List[_Worker] = []
        self._closed = False
        self._rotation = 0
        self._rid = itertools.count(1)
        self._generation = itertools.count(1)

        # Statistics (under self._lock unless writer-thread-only).
        self._reads = 0
        self._fallback_reads = 0
        self._respawns = 0
        self._deaths = 0
        self._deltas_shipped = 0
        self._delta_emit_times: Dict[int, float] = {}
        self._lag_log: deque = deque(maxlen=lag_samples)

        service.subscribe_deltas(self._on_delta)
        try:
            with self._lock:
                for index in range(workers):
                    self._workers.append(self._spawn(index))
            if wait_ready:
                self.wait_ready(timeout=ready_timeout)
        except BaseException:
            self.close()
            raise
        if self.heartbeat_interval and self.heartbeat_interval > 0:
            self._heartbeat = threading.Thread(
                target=self._heartbeat_loop, name="repro-pool-heartbeat",
                daemon=True)
            self._heartbeat.start()

    # ------------------------------------------------------------------
    # Spawning and the delta stream
    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> _Worker:
        """Start one worker (caller holds the pool lock).

        Capturing the bootstrap state and registering the worker for
        delta forwarding happen under the same lock the delta
        subscriber takes, so no delta can fall between the captured
        sequence and the first forwarded record; the worker-side
        ``version > bootstrapped`` guard drops any overlap.
        """
        if self.bootstrap == "generation":
            state = self._generation_bootstrap()
            seq = (state.deltas[-1].version if state.deltas
                   else state.version)
            payload = ("generation", state)
            return self._start_worker(index, payload, seq)
        snap, seq = self._service.published_state()
        config = capture_bootstrap(snap, version=seq)
        if self._bootstrap_directory is not None:
            # Facts replay from disk; configuration (not journaled)
            # ships explicitly.  Strip the heap from the shipped state.
            payload = ("directory", str(self._bootstrap_directory),
                       BootstrapState(facts=[], rules=config.rules,
                                      enabled=config.enabled,
                                      composition_limit=(
                                          config.composition_limit),
                                      engine=config.engine,
                                      version=seq))
        else:
            payload = ("state", config)
        return self._start_worker(index, payload, seq)

    def _start_worker(self, index: int, payload, seq: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        generation = next(self._generation)
        process = self._ctx.Process(
            target=replica_main,
            args=(child_conn, payload, self._telemetry),
            name=f"repro-replica-{index}-g{generation}", daemon=True)
        process.start()
        child_conn.close()
        worker = _Worker(index, generation, process, parent_conn, seq)
        worker.receiver = threading.Thread(
            target=self._receive_loop, args=(worker,),
            name=f"repro-replica-recv-{index}-g{generation}", daemon=True)
        worker.receiver.start()
        if _obs.ENABLED:
            _obs.TRACER.count("serve.pool.spawns")
        if _metrics.ENABLED:
            _metrics.METRICS.count("serve.pool.spawns")
        return worker

    def _build_generations(self) -> _SharedGenerations:
        """Build and share a fresh generation pair from the current
        published snapshot (caller holds the pool lock).

        When the primary's heap is already interned with an empty
        overlay (``Database.compact_store()``), its existing generation
        is shared directly — no rebuild; otherwise the snapshot's facts
        are interned and indexed here, once, for every worker that will
        ever attach.  The closure generation ships whenever the
        snapshot has a computed standard closure (the service warms it
        before publishing), letting workers skip closure recomputation.
        """
        from ..core.interned import ColumnarGeneration, InternedFactStore

        snap, seq = self._service.published_state()
        base_store = snap.facts
        base_gen = None
        if isinstance(base_store, InternedFactStore) \
                and not base_store.overlay_size \
                and base_store.generation is not None \
                and base_store.generation.shared_name is None:
            base_gen = base_store.generation
        if base_gen is None:
            base_gen = ColumnarGeneration.build(
                base_store, version=base_store.version)
        base_handle = base_gen.share()
        closure_gen = closure_handle = closure_stats = None
        closure_version = None
        result = snap._standard_result  # noqa: SLF001 - frozen snapshot
        if result is not None:
            closure_store = result.store
            if isinstance(closure_store, InternedFactStore) \
                    and not closure_store.overlay_size \
                    and closure_store.generation is not None \
                    and closure_store.generation.shared_name is None:
                closure_gen = closure_store.generation
            else:
                closure_gen = ColumnarGeneration.build(
                    closure_store, version=closure_store.version)
            closure_handle = closure_gen.share()
            closure_version = closure_store.version
            closure_stats = {
                "base_count": result.base_count,
                "derived_count": result.derived_count,
                "iterations": result.iterations,
                "rule_firings": dict(result.rule_firings),
                "rule_times": dict(result.rule_times),
            }
        if _obs.ENABLED:
            _obs.TRACER.count("serve.pool.generation_builds")
        if _metrics.ENABLED:
            _metrics.METRICS.count("serve.pool.generation_builds")
        return _SharedGenerations(
            base_gen, base_handle, closure_gen, closure_handle,
            closure_stats, seq, base_store.version, closure_version)

    def _generation_bootstrap(self) -> GenerationBootstrap:
        """The bootstrap payload for one attaching worker (caller holds
        the pool lock): current generation handles plus the delta
        suffix published since the generation was built."""
        if self._gen is None or self._gen_stale:
            if self._gen is not None:
                # Too many buffered deltas: retire the old pair.  Live
                # workers may still be attached, so the segments are
                # only unlinked once every worker has re-attached
                # (compact_generation) or at close().
                self._retired_segments.extend(self._gen.segment_names())
                self._gen.release()
            self._gen = self._build_generations()
            self._gen_log = []
            self._gen_stale = False
        gen = self._gen
        # Configuration only — never the fact list (that is the point).
        snap, _seq = self._service.published_state()
        return GenerationBootstrap(
            base_handle=gen.base_handle,
            closure_handle=gen.closure_handle,
            closure_stats=gen.closure_stats,
            rules=snap.rules.all_rules(),
            enabled=snap.rules.snapshot_state(),
            composition_limit=snap.composition_limit,
            engine=snap.engine,
            version=gen.seq,
            deltas=tuple(self._gen_log),
            store_version=gen.store_version,
            closure_version=gen.closure_version,
        )

    def _on_delta(self, delta: Delta) -> None:
        """Writer-thread subscriber: forward to every live worker."""
        with self._lock:
            if self._closed:
                return
            self._deltas_shipped += 1
            if self._gen is not None and not self._gen_stale \
                    and delta.version > self._gen.seq:
                # Buffer for future attachers.  The service updates its
                # published state before invoking subscribers, so every
                # delta above the generation's sequence lands here
                # before any spawn could need it.
                self._gen_log.append(delta)
                if len(self._gen_log) > GENERATION_LOG_CAP:
                    # Replay would cost more than a rebuild: rebuild at
                    # the next spawn (or compact_generation) instead.
                    self._gen_log = []
                    self._gen_stale = True
                elif (self.compact_after is not None
                        and not self._compacting
                        and self.bootstrap == "generation"
                        and len(self._gen_log) >= self.compact_after):
                    # Fold the buffer in the background — the writer
                    # thread must keep shipping deltas, never block on
                    # re-attach acks.
                    self._compacting = True
                    self._compact_thread = threading.Thread(
                        target=self._autocompact,
                        name="repro-pool-compact", daemon=True)
                    self._compact_thread.start()
            self._delta_emit_times[delta.version] = time.perf_counter()
            if len(self._delta_emit_times) > 2 * self._lag_log.maxlen:
                oldest = min(self._delta_emit_times)
                self._delta_emit_times.pop(oldest, None)
            workers = [w for w in self._workers if w.alive]
        for worker in workers:
            if delta.version > worker.start_seq:
                worker.send(("delta", delta))

    def _autocompact(self) -> None:
        """Background delta-log fold (``compact_after`` trigger).  A
        close() racing the fold surfaces as ``ServiceClosed`` — the
        buffered deltas die with the pool, nothing to save."""
        try:
            self.compact_generation()
        except (ServiceClosed, ValueError):
            pass
        finally:
            self._compacting = False

    def _receive_loop(self, worker: _Worker) -> None:
        """Per-worker receiver: acks, read results, death detection."""
        conn = worker.conn
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "ready":
                with self._version_cv:
                    worker.applied = message[1]
                    worker.ready = True
                    self._version_cv.notify_all()
            elif kind == "reattached":
                with self._version_cv:
                    if message[1] > worker.applied:
                        worker.applied = message[1]
                    worker.gen_acks += 1
                    self._version_cv.notify_all()
            elif kind in ("applied", "pong"):
                version = message[1]
                with self._version_cv:
                    if version > worker.applied:
                        worker.applied = version
                    emitted = self._delta_emit_times.get(version)
                    if emitted is not None and kind == "applied":
                        lag = time.perf_counter() - emitted
                        self._lag_log.append(lag)
                        if _metrics.ENABLED:
                            _metrics.METRICS.observe(
                                "serve.pool.lag_seconds", lag)
                    self._version_cv.notify_all()
            elif kind == "result":
                rid, ok, value, version = message[1:5]
                extra = message[5] if len(message) > 5 else None
                with self._version_cv:
                    if version > worker.applied:
                        worker.applied = version
                    pending = worker.pending.pop(rid, None)
                    self._version_cv.notify_all()
                if pending is not None:
                    pending.resolve(ok, value, extra)
            elif kind == "metrics":
                with self._version_cv:
                    if message[1] > worker.applied:
                        worker.applied = message[1]
                    worker.metrics_snapshot = message[2]
                    worker.metrics_seq += 1
                    self._version_cv.notify_all()
        self._on_worker_death(worker)

    def _on_worker_death(self, worker: _Worker) -> None:
        with self._lock:
            was_alive = worker.alive
            worker.alive = False
            worker.ready = False
            stranded = list(worker.pending.values())
            worker.pending.clear()
            closed = self._closed
            if was_alive and not closed:
                self._deaths += 1
                if _obs.ENABLED:
                    _obs.TRACER.count("serve.pool.worker_deaths")
                if _metrics.ENABLED:
                    _metrics.METRICS.count("serve.pool.worker_deaths")
        for pending in stranded:
            pending.fail_dead()
        try:
            worker.conn.close()
        except OSError:
            pass
        if closed or not self._respawn or not was_alive:
            return
        # Respawn on a fresh thread so this receiver can exit; the
        # replacement bootstraps from the *current* published snapshot
        # (or the durable directory), not from where the dead worker
        # had gotten to.
        threading.Thread(target=self._respawn_slot,
                         args=(worker.index, worker.generation),
                         name=f"repro-replica-respawn-{worker.index}",
                         daemon=True).start()

    def _respawn_slot(self, index: int, dead_generation: int) -> None:
        try:
            with self._lock:
                if self._closed:
                    return
                current = self._workers[index]
                if current.alive or current.generation != dead_generation:
                    return   # someone already replaced this slot
                self._workers[index] = self._spawn(index)
                self._respawns += 1
                if _obs.ENABLED:
                    _obs.TRACER.count("serve.pool.respawns")
                if _metrics.ENABLED:
                    _metrics.METRICS.count("serve.pool.respawns")
        except Exception:  # pragma: no cover - defensive
            if _obs.ENABLED:
                _obs.TRACER.count("serve.pool.respawn_failures")

    # ------------------------------------------------------------------
    # Metrics heartbeat
    # ------------------------------------------------------------------
    def _heartbeat_loop(self) -> None:
        """Periodically ask every live worker for a metrics snapshot.

        The replies land asynchronously in the receiver threads, so a
        heartbeat never blocks reads; :meth:`metrics` merges whatever
        snapshots have most recently arrived.
        """
        while not self._heartbeat_stop.wait(self.heartbeat_interval):
            with self._lock:
                if self._closed:
                    return
                workers = [w for w in self._workers if w.alive]
            for worker in workers:
                worker.send(("metrics_request",))

    def refresh_metrics(self, timeout: float = 2.0) -> bool:
        """Request a fresh snapshot from every live worker and wait
        (up to ``timeout``) for the replies — best effort: a worker
        that dies mid-request is simply skipped.  Returns whether
        every surviving target replied within the timeout."""
        with self._lock:
            targets = [(w, w.metrics_seq)
                       for w in self._workers if w.alive]
        for worker, _ in targets:
            worker.send(("metrics_request",))
        limit = time.monotonic() + timeout
        with self._version_cv:
            while True:
                if all(worker.metrics_seq > seq or not worker.alive
                       for worker, seq in targets):
                    return True
                remaining = limit - time.monotonic()
                if remaining <= 0:
                    return False
                self._version_cv.wait(remaining)

    def worker_metrics(self) -> List[dict]:
        """Per-worker heartbeat state: index, liveness, applied
        version, inflight count, and the latest shipped snapshot."""
        with self._lock:
            return [{"index": w.index, "alive": w.alive,
                     "applied": w.applied, "inflight": len(w.pending),
                     "metrics": w.metrics_snapshot}
                    for w in self._workers]

    def metrics(self, refresh: bool = False, timeout: float = 2.0) -> dict:
        """The pool-wide metrics view: the primary process's registry
        merged with every worker's latest heartbeat snapshot
        (:func:`repro.obs.metrics.merge_snapshots`) — counters add,
        histogram buckets add, so ``serve.request_seconds.query`` here
        is the latency distribution across the whole pool."""
        if refresh:
            self.refresh_metrics(timeout)
        snapshots = [_metrics.active_metrics().snapshot()]
        with self._lock:
            snapshots.extend(w.metrics_snapshot for w in self._workers
                             if w.metrics_snapshot)
        return _metrics.merge_snapshots(snapshots)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _pick(self, min_version: int) -> Optional[_Worker]:
        """Round-robin with inflight accounting (caller holds lock):
        rotate the starting slot for fairness, then take the eligible
        worker with the fewest inflight reads (rotation order breaks
        ties).  Eligible = alive, ready, applied ≥ ``min_version``."""
        count = len(self._workers)
        if not count:
            return None
        start = self._rotation
        self._rotation = (self._rotation + 1) % count
        best: Optional[_Worker] = None
        for offset in range(count):
            worker = self._workers[(start + offset) % count]
            if not (worker.alive and worker.ready
                    and worker.applied >= min_version):
                continue
            if best is None or len(worker.pending) < len(best.pending):
                best = worker
        return best

    def _min_version(self, ticket: Optional[WriteTicket],
                     deadline: Optional[float],
                     floor: int) -> int:
        if ticket is None:
            return floor
        if ticket.version is None:
            # Unsettled ticket: "read after this write" means the
            # write must land first — wait for it (same semantics as
            # service.add itself).
            ticket.result(deadline if deadline is not None
                          else self.read_timeout)
        return max(floor, ticket.version or 0)

    def _read(self, op: str, payload, deadline: Optional[float],
              ticket: Optional[WriteTicket],
              min_version: int = 0,
              ctx: Optional[TraceContext] = None) -> Any:
        if self._closed:
            raise ServiceClosed("replica pool is closed")
        min_version = self._min_version(ticket, deadline, min_version)
        if ctx is None:
            return self._dispatch_read(op, payload, deadline,
                                       min_version, None, None)
        with ctx.span("pool.read", role="pool", op=op) as span:
            return self._dispatch_read(op, payload, deadline,
                                       min_version, ctx, span)

    def _dispatch_read(self, op: str, payload, deadline: Optional[float],
                       min_version: int, ctx: Optional[TraceContext],
                       span) -> Any:
        with self._lock:
            self._reads += 1
            worker = self._pick(min_version)
            if worker is not None:
                rid = next(self._rid)
                pending = _Pending()
                worker.pending[rid] = pending
        if span is not None and worker is not None:
            span.attributes["worker"] = worker.index
        if ctx is None:
            message = ("read", rid, op, payload, deadline) \
                if worker is not None else None
        else:
            message = ("read", rid, op, payload, deadline, ctx.wire()) \
                if worker is not None else None
        if worker is None or not worker.send(message):
            if worker is not None:
                with self._lock:
                    worker.pending.pop(rid, None)
            return self._fallback(op, payload, deadline, ctx)
        timeout = deadline if deadline is not None else self.read_timeout
        if not pending.event.wait(timeout):
            with self._lock:
                worker.pending.pop(rid, None)
            if _obs.ENABLED:
                _obs.TRACER.count("serve.pool.read_timeouts")
            if _metrics.ENABLED:
                _metrics.METRICS.count("serve.pool.read_timeouts")
            raise DeadlineExceeded(
                f"replica did not answer {op!r} within {timeout}s")
        if pending.died:
            # The worker died mid-request; the primary always has the
            # answer.
            return self._fallback(op, payload, deadline, ctx)
        self._consume_extra(pending.extra, ctx)
        if not pending.ok:
            name, text = pending.value
            raise error_class(name)(text)
        if _obs.ENABLED:
            _obs.TRACER.count("serve.pool.replica_reads")
        if _metrics.ENABLED:
            _metrics.METRICS.count("serve.pool.replica_reads")
        return pending.value

    def _consume_extra(self, extra: Optional[dict],
                       ctx: Optional[TraceContext]) -> None:
        """Fold a result's telemetry payload into the parent side:
        worker spans into the request's trace, worker slow-query
        records into the primary's slow log."""
        if not extra:
            return
        spans = extra.get("spans")
        if spans and ctx is not None:
            ctx.absorb(spans)
        slow = extra.get("slow")
        if slow:
            self._service.slow_log.add(slow)

    def _fallback(self, op: str, payload, deadline: Optional[float],
                  ctx: Optional[TraceContext] = None) -> Any:
        """Serve a read from the primary's published snapshot — always
        current, so correct for any ``min_version``."""
        with self._lock:
            self._fallback_reads += 1
        if _obs.ENABLED:
            _obs.TRACER.count("serve.pool.fallback_reads")
        if _metrics.ENABLED:
            _metrics.METRICS.count("serve.pool.fallback_reads")
        service = self._service
        if op == "query":
            return service.query(payload, deadline=deadline, ctx=ctx)
        if op == "ask":
            return service.ask(payload, deadline=deadline, ctx=ctx)
        if op == "match":
            return service.match(payload, deadline=deadline, ctx=ctx)
        if op == "navigate":
            return service.navigate(payload, deadline=deadline,
                                    ctx=ctx).render()
        if op == "try":
            return service.try_(payload, deadline=deadline, ctx=ctx)
        if op == "probe":
            outcome = service.probe(payload, deadline=deadline, ctx=ctx)
            return {"succeeded": outcome.succeeded,
                    "value": outcome.value,
                    "waves": len(outcome.waves)}
        if op == "stats":
            return service.database_stats(deadline=deadline)
        raise ReplicaError(f"unknown read operation {op!r}")

    # ------------------------------------------------------------------
    # Read API (mirrors the service; ticket= adds read-your-writes)
    # ------------------------------------------------------------------
    def query(self, query: str, deadline: Optional[float] = None,
              ticket: Optional[WriteTicket] = None,
              min_version: int = 0,
              ctx: Optional[TraceContext] = None):
        """Evaluate a query on a replica (set of tuples)."""
        return self._read("query", query, deadline, ticket, min_version,
                          ctx)

    def ask(self, query: str, deadline: Optional[float] = None,
            ticket: Optional[WriteTicket] = None,
            min_version: int = 0,
            ctx: Optional[TraceContext] = None) -> bool:
        """Closed-query truth test on a replica."""
        return self._read("ask", query, deadline, ticket, min_version,
                          ctx)

    def match(self, pattern: str, deadline: Optional[float] = None,
              ticket: Optional[WriteTicket] = None,
              min_version: int = 0,
              ctx: Optional[TraceContext] = None):
        """Template match on a replica (list of facts)."""
        return self._read("match", pattern, deadline, ticket, min_version,
                          ctx)

    def navigate(self, pattern: str, deadline: Optional[float] = None,
                 ticket: Optional[WriteTicket] = None,
                 min_version: int = 0,
                 ctx: Optional[TraceContext] = None) -> str:
        """One browsing step on a replica, as rendered text."""
        return self._read("navigate", pattern, deadline, ticket,
                          min_version, ctx)

    def try_(self, entity: str, deadline: Optional[float] = None,
             ticket: Optional[WriteTicket] = None,
             min_version: int = 0,
             ctx: Optional[TraceContext] = None):
        """The paper's ``try`` operator on a replica."""
        return self._read("try", entity, deadline, ticket, min_version,
                          ctx)

    def probe(self, query: str, deadline: Optional[float] = None,
              ticket: Optional[WriteTicket] = None,
              min_version: int = 0,
              ctx: Optional[TraceContext] = None) -> dict:
        """Broadened query on a replica:
        ``{"succeeded", "value", "waves"}``."""
        return self._read("probe", query, deadline, ticket, min_version,
                          ctx)

    def database_stats(self, deadline: Optional[float] = None,
                       min_version: int = 0,
                       ctx: Optional[TraceContext] = None) -> dict:
        """A replica's :meth:`~repro.db.Database.stats`."""
        return self._read("stats", None, deadline, None, min_version, ctx)

    # ------------------------------------------------------------------
    # Introspection and control
    # ------------------------------------------------------------------
    def wait_ready(self, timeout: Optional[float] = 60.0) -> None:
        """Block until every live worker finished bootstrapping."""
        limit = (None if timeout is None
                 else time.monotonic() + timeout)
        with self._version_cv:
            while True:
                alive = [w for w in self._workers if w.alive]
                if alive and all(w.ready for w in alive):
                    return
                remaining = (None if limit is None
                             else limit - time.monotonic())
                if remaining is not None and remaining <= 0:
                    raise ReplicaError(
                        "replica workers did not become ready in time")
                self._version_cv.wait(remaining
                                      if remaining is not None else 1.0)

    def wait_for_version(self, version: int, *, all_workers: bool = False,
                         timeout: Optional[float] = 30.0) -> None:
        """Block until one (or every) live worker has applied
        ``version`` — the replication-lag barrier used by tests and
        the failover benchmark."""
        limit = (None if timeout is None
                 else time.monotonic() + timeout)
        with self._version_cv:
            while True:
                applied = [w.applied for w in self._workers if w.alive]
                if applied:
                    reached = (min(applied) if all_workers
                               else max(applied))
                    if reached >= version:
                        return
                remaining = (None if limit is None
                             else limit - time.monotonic())
                if remaining is not None and remaining <= 0:
                    raise DeadlineExceeded(
                        f"replicas did not reach version {version}"
                        f" in time (applied: {applied})")
                self._version_cv.wait(remaining
                                      if remaining is not None else 1.0)

    def compact_generation(self, timeout: float = 60.0) -> int:
        """Rebuild the shared generation pair from the current
        published snapshot and re-attach every live worker to it.

        This is the writer-driven compaction of the generation
        lifecycle: worker overlays (facts accumulated through delta
        replay since bootstrap) fold back into a fresh frozen
        generation, the delta-replay buffer resets, and future
        respawns attach the new pair.  The old segments are unlinked
        once every live worker acks the re-attach (or dies trying);
        on timeout they are parked and unlinked at :meth:`close`.

        Only meaningful under ``bootstrap="generation"``.  Returns the
        new generation's replication sequence.
        """
        if self.bootstrap != "generation":
            raise ValueError(
                "compact_generation requires bootstrap='generation'")
        with self._lock:
            if self._closed:
                raise ServiceClosed("replica pool is closed")
            old = self._gen
            if old is not None:
                self._retired_segments.extend(old.segment_names())
                old.release()
            self._gen = self._build_generations()
            self._gen_log = []
            self._gen_stale = False
            self.compactions += 1
            if _metrics.ENABLED:
                _metrics.METRICS.count("serve.pool.compactions")
            state = self._generation_bootstrap()
            targets = [(w, w.gen_acks) for w in self._workers if w.alive]
            target_seq = state.version
            # Send the re-attach while still holding the lock: a delta
            # shipped concurrently is either in the state's backlog
            # (appended before the snapshot) or its pipe write is
            # ordered after ours (the writer thread appends under this
            # lock before sending) — never consumed at the old
            # generation and then silently dropped by the re-attach.
            for worker, _ in targets:
                worker.send(("generation", state))
        limit = time.monotonic() + timeout
        acked = True
        with self._version_cv:
            while True:
                if all(worker.gen_acks > acks or not worker.alive
                       for worker, acks in targets):
                    break
                remaining = limit - time.monotonic()
                if remaining <= 0:
                    acked = False
                    break
                self._version_cv.wait(remaining)
        if acked:
            self._unlink_retired()
        return target_seq

    def _unlink_retired(self) -> None:
        """Unlink every retired generation segment (idempotent; missing
        segments are fine — another path may have won the race)."""
        from ..core.interned import unlink_generation

        with self._lock:
            names, self._retired_segments = self._retired_segments, []
        for name in names:
            try:
                unlink_generation(name)
            except OSError:  # pragma: no cover - defensive
                pass

    def crash_worker(self, index: int) -> None:
        """Hard-kill one worker (failover tests and benchmarks): the
        process exits without cleanup, the pool detects the broken
        pipe, fails inflight reads over to the primary, and respawns."""
        with self._lock:
            worker = self._workers[index]
        worker.send(("crash",))

    @property
    def workers(self) -> int:
        return len(self._workers)

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> dict:
        """Pool-level counters plus per-worker applied versions/lag."""
        with self._lock:
            primary = self._service.applied_seq
            applied = [w.applied if w.alive else None
                       for w in self._workers]
            inflight = [len(w.pending) for w in self._workers]
            alive = sum(1 for w in self._workers if w.alive)
            live_applied = [v for v in applied if v is not None]
            return {
                "workers": len(self._workers),
                "alive": alive,
                "start_method": self.start_method,
                "primary_version": primary,
                "applied_versions": applied,
                "max_lag": (primary - min(live_applied)
                            if live_applied else None),
                "inflight": inflight,
                "reads": self._reads,
                "fallback_reads": self._fallback_reads,
                "deltas_shipped": self._deltas_shipped,
                "worker_deaths": self._deaths,
                "respawns": self._respawns,
                "heartbeat_interval": self.heartbeat_interval,
                "worker_metrics_received": sum(
                    w.metrics_seq for w in self._workers),
                "closed": self._closed,
                "bootstrap": self.bootstrap,
                "generation_seq": (self._gen.seq
                                   if self._gen is not None else None),
                "generation_log": len(self._gen_log),
                "generation_stale": self._gen_stale,
                "retired_segments": len(self._retired_segments),
                "compact_after": self.compact_after,
                "compactions": self.compactions,
            }

    def lag_stats(self) -> dict:
        """Replication-lag distribution: seconds from delta emission on
        the writer thread to a worker's applied ack."""
        with self._lock:
            samples = sorted(self._lag_log)
        if not samples:
            return {"samples": 0}

        def pct(fraction: float) -> float:
            index = min(len(samples) - 1, int(fraction * len(samples)))
            return samples[index]

        return {
            "samples": len(samples),
            "p50_s": pct(0.50),
            "p95_s": pct(0.95),
            "p99_s": pct(0.99),
            "max_s": samples[-1],
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Stop every worker and detach from the delta stream."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
        self._heartbeat_stop.set()
        self._service.unsubscribe_deltas(self._on_delta)
        compacting = self._compact_thread
        if compacting is not None and compacting.is_alive():
            # Let an in-flight background fold finish (or hit the
            # closed check) before tearing down its workers.
            compacting.join(timeout)
        for worker in workers:
            worker.send(("stop",))
        deadline_at = time.monotonic() + timeout
        for worker in workers:
            remaining = max(0.1, deadline_at - time.monotonic())
            worker.process.join(remaining)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
            stranded = list(worker.pending.values())
            worker.pending.clear()
            for pending in stranded:
                pending.fail_dead()
        # Workers are gone: the shared generation segments (current pair
        # plus anything parked by compaction or rebuild) have no readers
        # left and must be unlinked here, or they outlive the pool in
        # /dev/shm.
        with self._lock:
            if self._gen is not None:
                self._retired_segments.extend(self._gen.segment_names())
                self._gen.release()
                self._gen = None
        self._unlink_retired()

    def shutdown(self, timeout: float = 10.0) -> None:
        """Alias for :meth:`close` (service-style naming)."""
        self.close(timeout=timeout)

    def __enter__(self) -> "ReplicaPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        alive = sum(1 for w in self._workers if w.alive)
        return (f"ReplicaPool({state}, workers={len(self._workers)},"
                f" alive={alive}, start_method={self.start_method})")
