#!/usr/bin/env python3
"""A durable library catalog: the §2.7 book world + persistence.

Shows the storage substrate (journal + snapshot recovery), the paper's
book queries, two-level membership (titles vs physical copies), the
complex-fact decomposition idiom (§2.6), and the ``relation()``
structured view over a loose heap.

Run:  python examples/library_catalog.py
"""

import shutil
import tempfile
from pathlib import Path

from repro import Fact, open_database
from repro.datasets import books


def main() -> None:
    directory = Path(tempfile.mkdtemp(prefix="repro-library-"))
    try:
        run(directory)
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def run(directory: Path) -> None:
    # ------------------------------------------------------------------
    # Session 1: build the catalog; every mutation is journaled.
    # ------------------------------------------------------------------
    db, session = open_database(directory)
    db.add_facts(books.facts())
    db.declare_class_relationship("AUTHOR")
    db.declare_class_relationship("CITES")

    print("Paper §2.7 queries:")
    print("  all books:          ", sorted(db.query(books.ALL_BOOKS)))
    print("  self-citations:     ",
          sorted(db.query(books.SELF_CITATIONS)))
    print("  self-citing authors:",
          sorted(db.query(books.SELF_CITING_AUTHORS)))
    print("  books not by John:  ",
          sorted(db.query(books.BOOKS_NOT_BY_JOHN)))

    # §2.6: a loan is a complex fact — decompose it around a loan
    # entity, exactly like the paper's enrollment E123.
    db.add("LOAN-7", "LOAN-COPY", "ISBN-914894-COPY1")
    db.add("LOAN-7", "LOAN-BORROWER", "RICK")
    db.add("LOAN-7", "LOAN-DUE", "2026-08-01")
    session.checkpoint()          # fold the journal into a snapshot
    db.add("LOAN-8", "LOAN-COPY", "ISBN-914894-COPY2")
    db.add("LOAN-8", "LOAN-BORROWER", "DAVE")
    session.close()               # LOAN-8 exists only in the journal

    # ------------------------------------------------------------------
    # Session 2: recover (snapshot + journal replay) and keep browsing.
    # ------------------------------------------------------------------
    db2, session2 = open_database(directory)
    print("\nRecovered catalog:", len(db2.facts), "stored facts")
    assert Fact("LOAN-7", "LOAN-BORROWER", "RICK") in db2.facts
    assert Fact("LOAN-8", "LOAN-BORROWER", "DAVE") in db2.facts

    print("\nBrowse a title's two levels (instances of an instance):")
    print(db2.navigate("(*, *, ISBN-914894)").render())

    print("\nStructured view over the loose heap (relation operator):")
    db2.add("RICK", "∈", "BORROWER")
    db2.add("DAVE", "∈", "BORROWER")
    db2.add("ISBN-914894-COPY1", "∈", "COPY")
    db2.add("ISBN-914894-COPY2", "∈", "COPY")
    db2.add("LOAN-7", "∈", "LOAN")
    db2.add("LOAN-8", "∈", "LOAN")
    table = db2.relation("LOAN", ("LOAN-COPY", "COPY"),
                         ("LOAN-BORROWER", "BORROWER"))
    print(table.render())
    session2.close()


if __name__ == "__main__":
    main()
