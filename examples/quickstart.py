#!/usr/bin/env python3
"""Quickstart: a loosely structured database in five minutes.

Builds a tiny heap of facts — no schema, no design phase — then shows
the three retrieval styles of Motro's architecture: standard queries,
navigation, and probing.

Run:  python examples/quickstart.py
"""

from repro import Database


def main() -> None:
    db = Database()

    # A database is just facts, added one by one (§2.6).  Schema-level
    # and data-level statements mix freely.
    db.add("JOHN", "∈", "EMPLOYEE")          # John is an employee
    db.add("EMPLOYEE", "∈", "PERSON")        # oops — fix it below
    db.remove_fact(next(iter(db.match("(EMPLOYEE, ∈, PERSON)"))))
    db.add("EMPLOYEE", "≺", "PERSON")        # employees are persons
    db.add("EMPLOYEE", "EARNS", "SALARY")    # every employee earns
    db.add("JOHN", "EARNS", "$25000")
    db.add("JOHN", "WORKS-FOR", "SHIPPING")
    db.add("SHIPPING", "∈", "DEPARTMENT")
    db.add("WORKS-FOR", "≺", "IS-PAID-BY")   # working implies payment

    # --- Standard queries (§2.7) ------------------------------------
    print("Who earns what?")
    for row in sorted(db.query("(x, EARNS, y)")):
        print("  ", row)

    print("\nEmployees earning over $20000:")
    print("  ", db.query(
        "exists y: (z, in, EMPLOYEE) and (z, EARNS, y)"
        " and (y, >, 20000)"))

    print("\nIs John paid by Shipping?  (inferred via ≺ on WORKS-FOR)")
    print("  ", db.ask("(JOHN, IS-PAID-BY, SHIPPING)"))

    # --- Navigation (§4.1) ------------------------------------------
    print("\nBrowse John's neighborhood — no schema knowledge needed:")
    print(db.navigate("(JOHN, *, *)").render())

    # --- Probing (§5) -------------------------------------------------
    print("\nProbe a query that fails (nobody OWNS anything yet):")
    db.add("OWNS", "≺", "HAS")
    db.add("JOHN", "HAS", "BICYCLE")
    result = db.probe("(JOHN, OWNS, z)")
    print(result.menu())
    if result.successes:
        print("  first suggestion returns:", result.select(1))


if __name__ == "__main__":
    main()
