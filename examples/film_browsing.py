#!/usr/bin/env python3
"""A browsing session over the film world.

The scenario the paper's introduction motivates: a user who knows one
token ("Tarkovsky"), no schema, and wants to find something
interesting.  The session uses try → navigation → paths → probing, the
exact escalation §4–§5 describes, over the repository's richest
dataset.

Run:  python examples/film_browsing.py
      (or interactively: python -m repro.shell movies)
"""

from repro.browse.paths import association_paths
from repro.datasets import movies


def main() -> None:
    db = movies.load()

    # 1. The user knows one name.  try(e) needs no other knowledge.
    print("> try TARKOVSKY")
    for fact in db.try_("TARKOVSKY"):
        print("  ", fact)

    # 2. Pick an entity out of the answer, look at its neighborhood.
    print("\n> (SOLARIS-1972, *, *)")
    print(db.navigate("(SOLARIS-1972, *, *)").render())

    # 3. "How is the novelist related to the character?"  Association
    #    paths — the §3.7 idea as search, with no composition cost.
    print("\n> paths LEM KELVIN (semantic distance ≤ 3)")
    for path in association_paths(db.view(), "LEM", "KELVIN",
                                  max_length=3):
        print("  ", path.render())

    # 4. A hit-and-miss query that misses — probing takes over (§5).
    question = "(z, in, WESTERN) and (z, DIRECTED-BY, KUBRICK)"
    print(f"\n> probe {question}")
    result = db.probe(question)
    print(result.menu())
    if result.successes:
        print("  selecting 1 ->", sorted(result.select(1)))

    # 5. Standard queries still work when the user does know things.
    print("\n> films rated above 91, with their directors:")
    value = db.query(
        "exists r: (f, RATING, r) and (r, >, 91)"
        " and (f, DIRECTED-BY, d)")
    for film, director in sorted(value):
        print(f"   {film:16s} {director}")


if __name__ == "__main__":
    main()
