#!/usr/bin/env python3
"""Inspecting the inference machinery: why, explain, lazy evaluation.

A loosely structured database answers with *inferred* facts; this tour
shows the introspection tools around that: derivation provenance
(``db.why``), query plans (``db.explain``), rule ablation, and the
lazy (query-driven) engine versus the materialized closure.

Run:  python examples/inspecting_inference.py
"""

import time

from repro import Database
from repro.datasets import paper
from repro.datasets.synthetic import hierarchy_facts, membership_facts


def provenance_tour() -> None:
    print("=" * 64)
    print("Why does an answer hold?  (derivation provenance)")
    print("=" * 64)
    db = paper.load(Database(trace=True))
    db.add("JOHN", "≈", "JOHNNY")

    print("\n> query (JOHNNY, EARNS, y)")
    for (amount,) in sorted(db.query("(JOHNNY, EARNS, y)")):
        print("  ", amount)

    print("\n> why (JOHNNY, EARNS, COMPENSATION)")
    print(db.why("(JOHNNY, EARNS, COMPENSATION)").render())

    tree = db.why("(JOHNNY, EARNS, COMPENSATION)")
    print("\nstored facts this rests on:")
    for fact in sorted(tree.stored_support()):
        print("  ", fact)

    db.add("SALARY", "PAID-IN", "DOLLARS")
    db.limit(2)
    print("\n> why a composed path (after limit(2)):")
    print(db.why("(JOHN, EARNS.SALARY.PAID-IN, DOLLARS)").render())


def explain_tour() -> None:
    print()
    print("=" * 64)
    print("How will a query run?  (EXPLAIN)")
    print("=" * 64)
    db = paper.load()
    print()
    print(db.explain(
        "exists y: (z, in, EMPLOYEE) and (z, EARNS, y)"
        " and (y, >, 26500)").render())


def ablation_tour() -> None:
    print()
    print("=" * 64)
    print("Which rule produced which answers?  (include/exclude)")
    print("=" * 64)
    db = paper.load()
    question = "(MANAGER, WORKS-FOR, DEPARTMENT)"
    print(f"\n  {question} with all rules:      {db.ask(question)}")
    db.exclude("gen-source")
    print(f"  ... without gen-source:                       "
          f" {db.ask(question)}")
    db.include("gen-source")


def lazy_tour() -> None:
    print()
    print("=" * 64)
    print("Materialize the closure, or derive on demand?")
    print("=" * 64)
    tree, leaves = hierarchy_facts(6, 2)
    base = list(tree) + membership_facts(leaves, 2)
    base_extra = [("C0", "HAS-POLICY", "GENERAL"),
                  ("JOHN", "LIKES", "FELIX")]

    def fresh() -> Database:
        db = Database()
        db.add_facts(base)
        for fact in base_extra:
            db.add(*fact)
        return db

    def race(question: str) -> None:
        lazy_db, materialized_db = fresh(), fresh()
        start = time.perf_counter()
        lazy_answer = lazy_db.query_lazy(question)
        lazy_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        materialized_answer = materialized_db.query(question)
        materialized_ms = (time.perf_counter() - start) * 1000
        assert lazy_answer == materialized_answer
        print(f"\n  question: {question}  ->  {sorted(lazy_answer)}")
        print(f"    lazy (tabled):        {lazy_ms:8.1f} ms"
              f"  ({lazy_db.lazy_engine().stats.goals} goals tabled)")
        print(f"    materialized closure: {materialized_ms:8.1f} ms"
              f"  ({materialized_db.closure().total} facts derived)")

    # A selective question barely touches the heap: laziness wins.
    race("(JOHN, LIKES, y)")
    # A question needing deep derivation chains: materializing once
    # with the semi-naive engine is the better deal.
    race("(I0, HAS-POLICY, y)")
    print("\n  (benchmark F9 sweeps this trade-off.)")


def main() -> None:
    provenance_tour()
    explain_tour()
    ablation_tour()
    lazy_tour()


if __name__ == "__main__":
    main()
