#!/usr/bin/env python3
"""Schema evolution and multi-database integration — the paper's §1
motivation for de-emphasizing structure.

Scenario: a company's personnel records evolve over three "eras"
(flat records → job hierarchy → merger with another company's
database).  In a structured system each era is a restructuring
project; in a loosely structured database each era is *just more
facts* — synonym and inversion facts do the integration work, and old
queries keep working unchanged.

Run:  python examples/schema_evolution.py
"""

from repro import Database


def era_1_flat_records(db: Database) -> None:
    print("\n--- Era 1: flat personnel records -----------------------")
    db.add("ALICE", "∈", "EMPLOYEE")
    db.add("ALICE", "EARNS", "52000")
    db.add("BOB", "∈", "EMPLOYEE")
    db.add("BOB", "EARNS", "48000")
    print("employees:", sorted(db.query("(x, in, EMPLOYEE)")))


def era_2_job_hierarchy(db: Database) -> None:
    print("\n--- Era 2: a job hierarchy appears (no restructuring) ----")
    # New classifications arrive as plain facts; nothing is migrated.
    db.add("ENGINEER", "≺", "EMPLOYEE")
    db.add("MANAGER", "≺", "EMPLOYEE")
    db.add("CAROL", "∈", "ENGINEER")
    db.add("CAROL", "EARNS", "61000")
    # The era-1 query still works and now sees Carol through the
    # membership-upward rule.
    print("employees:", sorted(db.query("(x, in, EMPLOYEE)")))
    print("engineers:", sorted(db.query("(x, in, ENGINEER)")))


def era_3_merger(db: Database) -> None:
    print("\n--- Era 3: merging another company's database ------------")
    # The acquired company modelled the same environment differently:
    # WAGE for EARNS, STAFF for EMPLOYEE, and it recorded departments
    # from the department side (HAS-MEMBER instead of WORKS-FOR).
    from repro import Fact
    from repro.merge import merge, suggest_relationship_bridges

    acquired = [
        Fact("DAN", "∈", "STAFF"),
        Fact("DAN", "WAGE", "45000"),
        Fact("EVE", "∈", "STAFF"),
        Fact("EVE", "WAGE", "58000"),
        Fact("ASSEMBLY", "HAS-MEMBER", "DAN"),
        Fact("ASSEMBLY", "HAS-MEMBER", "EVE"),
        # The acquired catalogue also re-records one of our people
        # under its own vocabulary — evidence for bridge suggestion.
        Fact("CAROL", "WAGE", "61000"),
    ]
    report = merge(db, acquired)
    print(report.render())

    # The merge is a plain union; unification is synonym/inversion
    # facts.  Where vocabularies overlap on shared entities, bridge
    # suggestion finds the candidates automatically:
    for suggestion in suggest_relationship_bridges(db,
                                                   min_similarity=0.15):
        print("  suggested bridge:", suggestion.render())

    # Integration = four facts, not an ETL project (§1: "unified
    # access to multiple databases is much simpler ...").
    db.add("STAFF", "≈", "EMPLOYEE")        # synonym (§3.3)
    db.add("WAGE", "≈", "EARNS")            # synonym
    db.add("HAS-MEMBER", "↔", "WORKS-FOR")  # inversion (§3.4)
    db.add("ASSEMBLY", "∈", "DEPARTMENT")
    # HAS-MEMBER characterizes the department, not every member class
    # (§2.2): if it were individual, target abstraction would conclude
    # (ASSEMBLY, HAS-MEMBER, EMPLOYEE), whose inverse claims *every*
    # employee works for Assembly.
    db.declare_class_relationship("HAS-MEMBER")

    print("all employees, both companies:",
          sorted(db.query("(x, in, EMPLOYEE)")))
    print("everyone's earnings via the era-1 vocabulary:")
    for name, amount in sorted(db.query("(x, EARNS, y) and (y, >, 0)")):
        print(f"   {name:6s} {amount}")
    print("who works for ASSEMBLY (inverted):",
          sorted(db.query("(x, WORKS-FOR, ASSEMBLY)")))


def browsing_the_merged_world(db: Database) -> None:
    print("\n--- Browsing the merged heap ------------------------------")
    print(db.navigate("(DAN, *, *)").render())
    print()
    result = db.probe("(DAN, SALARY, z)")  # wrong vocabulary entirely
    print("probe (DAN, SALARY, z):")
    print(result.menu())


def main() -> None:
    db = Database()
    era_1_flat_records(db)
    era_2_job_hierarchy(db)
    era_3_merger(db)
    browsing_the_merged_world(db)
    stats = db.stats()
    print(f"\n{stats['base_facts']} stored facts,"
          f" {stats['derived_facts']} inferred,"
          f" 0 restructuring projects.")


if __name__ == "__main__":
    main()
