#!/usr/bin/env python3
"""The paper, end to end: every worked example of Motro (SIGMOD 1984),
regenerated from this implementation.

Sections mirror the paper: §3 standard inferences, §4.1 the navigation
session (John → his favorite concerto → the Mozarts), §5 probing with
automatic retraction, §6.1 the operators.

Run:  python examples/paper_walkthrough.py
"""

from repro import Database
from repro.datasets import music, paper, university


def heading(text: str) -> None:
    print()
    print("=" * 64)
    print(text)
    print("=" * 64)


def navigation_session() -> None:
    heading("§4.1 — Browsing by navigation (experiment E1)")
    db = music.load()

    session = db.session()
    print("\n> (JOHN, *, *)")
    print(session.visit("JOHN").render())

    print("\n> (PC#9-WAM, *, *)")
    print(session.visit("PC#9-WAM").render())

    print("\n> limit(2)   -- enable composition for the next query")
    db.limit(2)
    session = db.session()
    print("> (LEOPOLD, *, MOZART)")
    print(session.between("LEOPOLD", "MOZART").render())
    print("\nThe composed path PERFORMED.PC#9-WAM.COMPOSED-BY is the")
    print("paper's 'power of composition as a browsing tool'.")


def standard_inferences() -> None:
    heading("§3 — Standard inference rules (on the §6.1 employee world)")
    db = paper.load()
    checks = [
        ("generalization (source):  (MANAGER, WORKS-FOR, DEPARTMENT)",
         "(MANAGER, WORKS-FOR, DEPARTMENT)"),
        ("generalization (target):  (EMPLOYEE, EARNS, COMPENSATION)",
         "(EMPLOYEE, EARNS, COMPENSATION)"),
        ("membership:               (JOHN, WORKS-FOR, DEPARTMENT)",
         "(JOHN, WORKS-FOR, DEPARTMENT)"),
        ("class rel. not inherited: (JOHN, TOTAL-NUMBER, 180)",
         "(JOHN, TOTAL-NUMBER, 180)"),
    ]
    for label, proposition in checks:
        print(f"  {label:60s} -> {db.ask(proposition)}")

    db.add("JOHN", "≈", "JOHNNY")
    print(f"  synonym:                  (JOHNNY, EARNS, $26000)"
          f"{'':14s} -> {db.ask('(JOHNNY, EARNS, $26000)')}")


def probing() -> None:
    heading("§5 — Browsing by probing (experiments E2, E3)")
    db = university.load()

    print("\n> " + university.STUDENTS_LOVE_FREE)
    result = db.probe(university.STUDENTS_LOVE_FREE)
    print(result.menu())
    print("  select 1 ->", result.select(1))
    print("  select 2 ->", result.select(2))

    print("\n> " + university.QUARTERBACKS_FROM_USC)
    result = db.probe(university.QUARTERBACKS_FROM_USC)
    print(result.menu())

    print("\n> " + university.MISSPELLED + "   (misspelled relationship)")
    print(db.probe(university.MISSPELLED).menu())


def operators() -> None:
    heading("§6.1 — Operators (experiments E5, E6)")
    db = paper.load()

    print("\n> try(SHIPPING)")
    for fact in db.try_("SHIPPING"):
        print("  ", fact)

    print("\n> relation(EMPLOYEE, WORKS-FOR DEPARTMENT, EARNS SALARY)")
    print(db.relation("EMPLOYEE", ("WORKS-FOR", "DEPARTMENT"),
                      ("EARNS", "SALARY")).render())

    print("\n> define(earners, ...) / invoke(earners, 26000)")
    db.define("earners",
              "exists y: (x, in, EMPLOYEE) and (x, EARNS, y)"
              " and (y, >, $1)")
    print("  earners over 26000:", sorted(db.invoke("earners", "26000")))


def main() -> None:
    navigation_session()
    standard_inferences()
    probing()
    operators()


if __name__ == "__main__":
    main()
