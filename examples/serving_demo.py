#!/usr/bin/env python3
"""Serving demo: snapshot-isolated reads, batched writes, and the wire.

Wraps a database in :class:`repro.DatabaseService`, shows that readers
see immutable snapshots while a writer batch is in flight, demonstrates
write coalescing (many queued mutations, few snapshot publishes), and
finishes with a JSON-lines TCP round trip through
:class:`repro.serve.net.ServiceServer` / ``ServiceClient``.

Run:  python examples/serving_demo.py
"""

import threading

from repro import Database, DatabaseService
from repro.serve.net import ServiceClient, ServiceServer


def build_database() -> Database:
    db = Database()
    db.add("JOHN", "∈", "EMPLOYEE")
    db.add("EMPLOYEE", "≺", "PERSON")
    db.add("EMPLOYEE", "EARNS", "SALARY")
    return db


def main() -> None:
    service = DatabaseService(build_database(), batch_window=0.005)

    # --- Snapshot isolation -----------------------------------------
    # A pinned view is a frozen snapshot: writes that land later are
    # invisible to it, while fresh reads see them immediately.
    pinned = service.read_view()
    service.add("MARY", "∈", "EMPLOYEE")
    print("pinned view still has one employee: ",
          sorted(pinned.query("(x, ∈, EMPLOYEE)")))
    print("fresh reads see the new employee:   ",
          sorted(service.query("(x, ∈, EMPLOYEE)")))
    print("derived facts serve too:            ",
          service.ask("(MARY, EARNS, SALARY)"))

    # --- Write coalescing -------------------------------------------
    # Queue a burst of asynchronous writes; the single writer thread
    # folds them into a handful of batches, each publishing one new
    # snapshot (instead of one closure recompute per fact).
    before = service.stats()["snapshot_publishes"]
    tickets = [service.add_async(("ITEM%d" % i, "∈", "INVENTORY"))
               for i in range(100)]
    for ticket in tickets:
        ticket.result(timeout=10.0)
    stats = service.stats()
    print("\n100 writes coalesced into %d publish(es); largest batch %d"
          % (stats["snapshot_publishes"] - before, stats["largest_batch"]))

    # --- Concurrent readers -----------------------------------------
    # Reads never block on the writer: each thread grabs the currently
    # published snapshot and queries it lock-free.
    counts = []

    def reader() -> None:
        counts.append(len(service.query("(x, ∈, INVENTORY)")))

    threads = [threading.Thread(target=reader) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    print("8 concurrent readers each saw %d items" % counts[0])

    # --- Over the wire ----------------------------------------------
    server = ServiceServer(service, host="127.0.0.1", port=0)
    server.start()
    host, port = server.address
    client = ServiceClient(host, port)
    client.add("REMOTE", "∈", "EMPLOYEE")
    print("\nvia TCP (%s:%d): employees = %s"
          % (host, port, sorted(client.query("(x, ∈, EMPLOYEE)"))))
    client.close()
    server.close()
    service.close()
    print("\nservice closed cleanly")


if __name__ == "__main__":
    main()
