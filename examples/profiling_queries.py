#!/usr/bin/env python3
"""Profiling queries and closures with the observability layer.

Walks through the three ways to watch the system work:

1. ``explain_analyze`` — the planner's estimates next to what actually
   ran, per conjunct;
2. scoped tracing with ``use_tracer`` — spans, counters, and gauges
   around any block of code, summarized as a fixed-width report or
   exported as JSON lines;
3. per-rule closure accounting — where the fixpoint loop's time went,
   rule by rule.

Run:  python examples/profiling_queries.py
"""

import io

from repro import Database
from repro.datasets import movies
from repro.obs import Tracer, read_jsonl, summary, use_tracer, write_jsonl


def main() -> None:
    db = movies.load()

    # --- 1. EXPLAIN ANALYZE -----------------------------------------
    # The planner orders conjuncts by estimated cost; the analyzed
    # explanation shows how good those estimates were.
    query = "(x, ∈, SCIENCE-FICTION) and (x, DIRECTED-BY, y)"
    print("EXPLAIN ANALYZE of:", query)
    print(db.explain_analyze(query).render())

    # --- 2. Scoped tracing ------------------------------------------
    # A private tracer observes one block without touching global
    # state: every instrumented layer (store, engine, evaluator,
    # browsers) reports into it.
    with use_tracer(Tracer()) as tracer:
        db2 = Database(movies.facts())
        db2.closure()
        db2.query("(x, ∈, FILM) and (x, DIRECTED-BY, TARKOVSKY)")
        db2.navigate("(SOLARIS-1972, *, *)")
    print()
    print(summary(tracer, title="one traced session"))

    # The same data exports as JSON lines for offline analysis.
    buffer = io.StringIO()
    count = write_jsonl(tracer, buffer)
    events = read_jsonl(io.StringIO(buffer.getvalue()))
    print(f"\nexported {count} events;"
          f" first: {events[0]['type']} {events[0].get('name', '')!r}")

    # --- 3. Per-rule closure accounting -----------------------------
    # Under tracing, the engine attributes the fixpoint loop's time to
    # individual rules (plus the reserved "(apply)" store-update
    # entry); the pieces sum to the engine.closure_seconds gauge.
    with use_tracer(Tracer()) as tracer:
        db3 = Database(movies.facts())
        result = db3.standard_closure()
    total = tracer.gauges["engine.closure_seconds"]
    print(f"\nclosure: {result.derived_count} facts derived in"
          f" {result.iterations} rounds, {total * 1000:.1f} ms")
    print("slowest rules:")
    slowest = sorted(result.rule_times.items(),
                     key=lambda item: item[1], reverse=True)
    for name, seconds in slowest[:5]:
        firings = result.rule_firings.get(name, 0)
        print(f"  {name:<28} {seconds * 1000:7.2f} ms"
              f"   {firings} firings")
    print(f"  accounted: {sum(result.rule_times.values()) / total:.0%}"
          f" of the loop")


if __name__ == "__main__":
    main()
